"""Persistent decision tables: (system, collective, size-bucket) → config.

The table is the tuner's product and the :class:`TunedXhc` component's
input — the same JSON artifact, so tuning on one machine and deploying on
another is a file copy. Sizes map to power-of-two buckets; lookups fall
back to the nearest tuned bucket of the same (system, collective), which
matches how the real decision files interpolate between swept sizes.
"""

from __future__ import annotations

import json
import math
import os

from ..xhc.config import XhcConfig
from .space import config_from_dict, config_to_dict

TABLE_VERSION = 1


def bucket_of(size: int) -> int:
    """The power-of-two bucket a message size falls into (lower edge
    exclusive, upper inclusive: 1025..2048 → 2048)."""
    if size <= 1:
        return 1
    return 1 << math.ceil(math.log2(size))


class DecisionTable:
    """An updatable mapping of tuned decisions with JSON persistence."""

    def __init__(self) -> None:
        # (system, collective, bucket) -> entry dict
        self.entries: dict[tuple[str, str, int], dict] = {}

    def __len__(self) -> int:
        return len(self.entries)

    def __contains__(self, key: tuple[str, str, int]) -> bool:
        system, collective, bucket = key
        return (system.lower(), collective, bucket) in self.entries

    def record(self, system: str, collective: str, size: int,
               config: XhcConfig, latency_s: float,
               baseline_s: float | None = None,
               nranks: int | None = None) -> None:
        key = (system.lower(), collective, bucket_of(size))
        self.entries[key] = {
            "config": config_to_dict(config),
            "latency_us": latency_s * 1e6,
            "baseline_us": None if baseline_s is None else baseline_s * 1e6,
            "nranks": nranks,
        }

    def lookup_entry(self, system: str, collective: str,
                     size: int) -> "tuple[int, dict] | None":
        """The raw tuned entry (and the bucket it came from) for a size;
        nearest tuned bucket of the same (system, collective) wins.
        This is what the serve layer returns to clients — the entry dict
        carries the config plus its recorded latencies."""
        system = system.lower()
        bucket = bucket_of(size)
        entry = self.entries.get((system, collective, bucket))
        if entry is not None:
            return bucket, entry
        tuned = [b for (s, c, b) in self.entries
                 if s == system and c == collective]
        if not tuned:
            return None
        nearest = min(tuned, key=lambda b: (abs(math.log2(b)
                                                - math.log2(bucket)), b))
        return nearest, self.entries[(system, collective, nearest)]

    def lookup(self, system: str, collective: str,
               size: int) -> XhcConfig | None:
        """Best config for a message size; nearest tuned bucket wins."""
        found = self.lookup_entry(system, collective, size)
        if found is None:
            return None
        _bucket, entry = found
        return config_from_dict(entry["config"])

    def systems(self) -> list[str]:
        return sorted({s for (s, _c, _b) in self.entries})

    # -- persistence -------------------------------------------------------

    def to_json(self) -> dict:
        return {
            "version": TABLE_VERSION,
            "generated_by": "python -m repro tune",
            "entries": [
                {"system": s, "collective": c, "bucket": b, **entry}
                for (s, c, b), entry in sorted(self.entries.items())
            ],
        }

    def save(self, path: str | os.PathLike) -> None:
        path = os.fspath(path)
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(path, "w") as fh:
            json.dump(self.to_json(), fh, indent=1, sort_keys=True)
            fh.write("\n")

    @classmethod
    def from_json(cls, payload: dict) -> "DecisionTable":
        table = cls()
        for entry in payload.get("entries", []):
            key = (entry["system"].lower(), entry["collective"],
                   int(entry["bucket"]))
            table.entries[key] = {
                "config": entry["config"],
                "latency_us": entry.get("latency_us"),
                "baseline_us": entry.get("baseline_us"),
                "nranks": entry.get("nranks"),
            }
        return table

    @classmethod
    def load(cls, path: str | os.PathLike) -> "DecisionTable":
        with open(path) as fh:
            return cls.from_json(json.load(fh))

    def merge(self, other: "DecisionTable") -> None:
        """Adopt ``other``'s decisions, overwriting shared keys."""
        self.entries.update(other.entries)


def default_table_path() -> str | None:
    """Locate a committed decision table: ``$REPRO_TUNED_TABLE``, then
    ``results/tuned/decision_table.json`` under the CWD, then under the
    repo the package was imported from."""
    env = os.environ.get("REPRO_TUNED_TABLE")
    if env:
        return env if os.path.exists(env) else None
    rel = os.path.join("results", "tuned", "decision_table.json")
    for base in (os.getcwd(),
                 os.path.dirname(os.path.dirname(os.path.dirname(
                     os.path.dirname(os.path.abspath(__file__)))))):
        candidate = os.path.join(base, rel)
        if os.path.exists(candidate):
            return candidate
    return None
