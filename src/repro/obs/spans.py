"""Hierarchical span tracing over simulated time.

A *span* is a named interval on a *track* (one simulated process): the
XHC broadcast a rank executes, the fan-out pull loop inside it, one copy
the engine booked, one blocked wait on a flag. Spans nest per track —
algorithm code opens them with::

    with node.obs.span("xhc.bcast", cat="coll", rank=me, nbytes=n):
        ...

inside a simulated generator (``with`` works across ``yield``: the enter
and exit timestamps are read from the engine's simulated clock at the
resumes where control actually passes through them). The engine itself
records copy/reduce spans and blocked-wait spans, including *who* ended
each wait — the dependency edges :mod:`repro.obs.critical_path` walks.

When observability is off the :data:`NULL_OBSERVER` stands in: its
``span()`` returns a shared no-op context manager and its registry hands
out no-op metric handles, so instrumented code costs one attribute call
per site (measured < 2% on the OSU bcast sweep; see
docs/observability.md).
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Any, Generator, Iterator

from .metrics import NULL_METRICS, MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.engine import Engine, SimProcess

# Track used for code that runs outside any simulated process (component
# setup, hierarchy construction).
SETUP_TRACK = -1


class SpanRecord:
    """One closed interval on a track. ``cat`` groups spans for display
    and analysis: "coll" (collective entry), "phase" (algorithm step),
    "copy" (engine transfer), "wait" (blocked on a flag/atomic),
    "shmem" (mapping syscalls)."""

    __slots__ = ("id", "name", "cat", "track", "start", "end", "parent",
                 "args")

    def __init__(self, id: int, name: str, cat: str, track: int,
                 start: float, end: float | None = None,
                 parent: int | None = None,
                 args: dict | None = None) -> None:
        self.id = id
        self.name = name
        self.cat = cat
        self.track = track
        self.start = start
        self.end = end
        self.parent = parent
        self.args = args

    @property
    def duration(self) -> float:
        return (self.end - self.start) if self.end is not None else 0.0

    def __repr__(self) -> str:
        return (f"<span {self.name} [{self.start:.3e}"
                f"..{'open' if self.end is None else format(self.end, '.3e')}]"
                f" track={self.track}>")


class _SpanContext:
    """Context manager handed out by :meth:`Observer.span`."""

    __slots__ = ("obs", "name", "cat", "args", "rec")

    def __init__(self, obs: "Observer", name: str, cat: str,
                 args: dict | None) -> None:
        self.obs = obs
        self.name = name
        self.cat = cat
        self.args = args
        self.rec: SpanRecord | None = None

    def __enter__(self) -> SpanRecord:
        self.rec = self.obs._begin(self.name, self.cat, self.args)
        return self.rec

    def __exit__(self, exc_type, exc, tb) -> None:
        self.obs._end(self.rec)


class _NullSpanContext:
    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpanContext()


class WaitRecord:
    """One blocked interval: [start, end] on ``track``, waiting on
    ``target``. ``waker`` is the track whose write satisfied the wait (at
    simulated time ``woke_at``); the gap [woke_at, end] is the waiter's
    line-fetch latency."""

    __slots__ = ("track", "target", "kind", "start", "end", "waker",
                 "woke_at")

    def __init__(self, track: int, target: str, kind: str,
                 start: float) -> None:
        self.track = track
        self.target = target
        self.kind = kind
        self.start = start
        self.end: float | None = None
        self.waker: int | None = None
        self.woke_at: float | None = None

    @property
    def group(self) -> str:
        """Aggregation key: the target's name family (xhc.avail.7 ->
        xhc.avail), the same interning :attr:`Flag.wait_key` uses, so
        span groups and ``SimProcess.wait_breakdown`` rows line up."""
        from ..sim.syncobj import wait_group
        return wait_group(self.target)


class Observer:
    """Collects spans, waits, instants and metrics for one engine run."""

    def __init__(self, engine: "Engine", record_copies: bool = True,
                 span_limit: int = 2_000_000) -> None:
        self.engine = engine
        self.enabled = True
        self.record_copies = record_copies
        self.span_limit = span_limit
        self.metrics = MetricsRegistry()
        self.spans: list[SpanRecord] = []
        self.waits: list[WaitRecord] = []
        self.instants: list[tuple[float, int, str, dict]] = []
        self.dropped = 0
        # track id (SimProcess.pid, or SETUP_TRACK) -> (name, core)
        self.tracks: dict[int, tuple[str, int]] = {
            SETUP_TRACK: ("setup", -1)}
        self._ids = itertools.count()
        self._stacks: dict[int, list[SpanRecord]] = {}
        self._pending_waits: dict[int, WaitRecord] = {}
        self._m_messages = self.metrics.counter(
            "messages.count", "logical messages emitted by collectives")
        self._m_msg_bytes = self.metrics.counter(
            "messages.bytes", "total logical-message payload")

    # -- track bookkeeping --------------------------------------------------

    def _track_of(self, proc: "SimProcess | None") -> int:
        if proc is None:
            return SETUP_TRACK
        track = proc.pid
        if track not in self.tracks:
            self.tracks[track] = (proc.name, proc.core)
        return track

    def track_name(self, track: int) -> str:
        return self.tracks.get(track, (f"track{track}", -1))[0]

    def track_core(self, track: int) -> int:
        return self.tracks.get(track, ("?", -1))[1]

    def current_span(self, track: int) -> str | None:
        """Name (plus rank arg, if any) of the innermost open span on
        ``track`` — the phase context repro.check attaches to findings."""
        stack = self._stacks.get(track)
        if not stack:
            return None
        rec = stack[-1]
        if rec.args and "rank" in rec.args:
            return f"{rec.name}(rank={rec.args['rank']})"
        return rec.name

    # -- stack spans --------------------------------------------------------

    def span(self, name: str, cat: str = "phase", **args: Any):
        """Context manager timing a nested phase on the current track."""
        return _SpanContext(self, name, cat, args or None)

    def wrap(self, gen: Generator, name: str, cat: str = "coll",
             **args: Any) -> Iterator:
        """Run ``gen`` inside a span (used to instrument whole
        collectives at the Communicator layer)."""
        with _SpanContext(self, name, cat, args or None):
            yield from gen

    def _begin(self, name: str, cat: str, args: dict | None) -> SpanRecord:
        track = self._track_of(self.engine._current_proc)
        stack = self._stacks.setdefault(track, [])
        parent = stack[-1].id if stack else None
        rec = SpanRecord(next(self._ids), name, cat, track,
                         self.engine.now, None, parent, args)
        stack.append(rec)
        return rec

    def _end(self, rec: SpanRecord | None) -> None:
        if rec is None:  # pragma: no cover - defensive
            return
        rec.end = self.engine.now
        stack = self._stacks.get(rec.track)
        if stack and stack[-1] is rec:
            stack.pop()
        elif stack and rec in stack:  # out-of-order close (abandoned gen)
            stack.remove(rec)
        self._store(rec)

    def _store(self, rec: SpanRecord) -> None:
        if len(self.spans) >= self.span_limit:
            self.dropped += 1
            return
        self.spans.append(rec)

    # -- point-recorded spans (engine copies, attaches) ---------------------

    def record(self, proc: "SimProcess | None", name: str, cat: str,
               start: float, end: float, **args: Any) -> None:
        """A span whose bounds are already known (engine transfers)."""
        track = self._track_of(proc)
        stack = self._stacks.get(track)
        parent = stack[-1].id if stack else None
        self._store(SpanRecord(next(self._ids), name, cat, track,
                               start, end, parent, args or None))

    # -- waits (engine-driven) ----------------------------------------------

    def begin_wait(self, proc: "SimProcess", target: str,
                   kind: str = "flag") -> None:
        track = self._track_of(proc)
        self._pending_waits[track] = WaitRecord(
            track, target, kind, self.engine.now)

    def note_waker(self, proc: "SimProcess",
                   waker: "SimProcess | None") -> None:
        """Called at the write that satisfies ``proc``'s pending wait."""
        wait = self._pending_waits.get(proc.pid)
        if wait is not None and wait.waker is None:
            wait.waker = self._track_of(waker)
            wait.woke_at = self.engine.now

    def end_wait(self, proc: "SimProcess") -> None:
        wait = self._pending_waits.pop(proc.pid, None)
        if wait is None:
            return
        wait.end = self.engine.now
        self.waits.append(wait)
        stack = self._stacks.get(wait.track)
        parent = stack[-1].id if stack else None
        self._store(SpanRecord(
            next(self._ids), f"wait:{wait.group}", "wait", wait.track,
            wait.start, wait.end, parent,
            {"target": wait.target, "waker": wait.waker}))
        self.metrics.counter("flags.blocked_waits").inc()
        self.metrics.histogram("flags.wait_seconds", scale=1e-9).observe(
            wait.end - wait.start)

    # -- instants -----------------------------------------------------------

    def instant(self, proc: "SimProcess | None", label: str,
                meta: dict) -> None:
        """Zero-duration annotation (mirrors engine Trace primitives)."""
        track = self._track_of(proc)
        self.instants.append((self.engine.now, track, label, meta))
        if label == "message":
            self._m_messages.inc()
            nbytes = meta.get("nbytes", 0)
            self._m_msg_bytes.inc(nbytes)
            src, dst = meta.get("src"), meta.get("dst")
            if src is not None and dst is not None:
                from ..topology.distance import message_distance_label
                label_ = message_distance_label(
                    self.engine.pricer.topo, src, dst)
                self.metrics.counter(f"message.bytes.{label_}").inc(nbytes)

    # -- finishing ----------------------------------------------------------

    def flush_open(self) -> None:
        """Close any still-open spans/waits at the current simulated time
        (abandoned generators); call before exporting."""
        now = self.engine.now
        for stack in self._stacks.values():
            while stack:
                rec = stack.pop()
                rec.end = now
                self._store(rec)
        for track in list(self._pending_waits):
            wait = self._pending_waits.pop(track)
            wait.end = now
            self.waits.append(wait)

    def span_tree(self) -> dict[int, list[SpanRecord]]:
        """Finished spans grouped by track, sorted by (start, -duration)."""
        out: dict[int, list[SpanRecord]] = {}
        for rec in self.spans:
            if rec.end is None:
                continue
            out.setdefault(rec.track, []).append(rec)
        for spans in out.values():
            spans.sort(key=lambda s: (s.start, -(s.end - s.start)))
        return out


class NullObserver:
    """Observability off: every operation is a no-op, every handle is
    shared. ``enabled`` gates any per-chunk instrumentation."""

    enabled = False
    record_copies = False
    metrics = NULL_METRICS
    spans: tuple = ()
    waits: tuple = ()
    instants: tuple = ()
    tracks: dict = {}
    dropped = 0

    __slots__ = ()

    def span(self, name: str, cat: str = "phase", **args: Any):
        return _NULL_SPAN

    def wrap(self, gen: Generator, name: str, cat: str = "coll",
             **args: Any) -> Generator:
        return gen

    def record(self, proc, name, cat, start, end, **args) -> None:
        pass

    def begin_wait(self, proc, target, kind="flag") -> None:
        pass

    def note_waker(self, proc, waker) -> None:
        pass

    def end_wait(self, proc) -> None:
        pass

    def instant(self, proc, label, meta) -> None:
        pass

    def flush_open(self) -> None:
        pass

    def span_tree(self) -> dict:
        return {}

    def track_name(self, track: int) -> str:
        return f"track{track}"

    def track_core(self, track: int) -> int:
        return -1

    def current_span(self, track: int) -> None:
        return None


NULL_OBSERVER = NullObserver()
