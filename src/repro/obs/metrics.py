"""Metrics registry: counters, gauges and histograms for the simulator.

The scattered ad-hoc counters that :mod:`repro.sim.stats` used to scrape
(XPMEM attach totals, regcache hits, flag traffic) register here instead,
so every report reads the same numbers. A metric is created once (usually
at component setup) and updated on the hot path through a pre-resolved
handle — with observability disabled the handles are shared no-op
singletons, so the cost of an update is one attribute call.

Naming convention: dot-separated, subsystem first —
``xpmem.attaches``, ``regcache.hits``, ``flags.sets``,
``message.bytes.intra-numa`` — see docs/observability.md for the full
catalogue.
"""

from __future__ import annotations

from typing import Iterator


class Counter:
    """Monotonically increasing count."""

    kind = "counter"

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0

    def inc(self, n: int | float = 1) -> None:
        self.value += n


class Gauge:
    """A value that can move both ways (levels, sizes, ratios)."""

    kind = "gauge"

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, n: float = 1) -> None:
        self.value += n

    def dec(self, n: float = 1) -> None:
        self.value -= n


class Histogram:
    """Power-of-two bucketed distribution (bytes, wait seconds, ...).

    Bucket ``i`` counts observations in ``(2**(i-1), 2**i] * scale``;
    bucket 0 counts observations ``<= scale``. ``scale`` sets the smallest
    resolvable magnitude (1 byte, 1 nanosecond, ...).
    """

    kind = "histogram"

    __slots__ = ("name", "help", "scale", "buckets", "count", "sum",
                 "min", "max")

    def __init__(self, name: str, help: str = "", scale: float = 1.0) -> None:
        self.name = name
        self.help = help
        self.scale = scale
        self.buckets: dict[int, int] = {}
        self.count = 0
        self.sum = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        scaled = value / self.scale
        bucket = 0
        while scaled > 1.0:
            scaled /= 2.0
            bucket += 1
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


class _NullMetric:
    """Shared do-nothing handle; every update method is a no-op."""

    kind = "null"
    name = ""
    value = 0

    __slots__ = ()

    def inc(self, n=1) -> None:
        pass

    def dec(self, n=1) -> None:
        pass

    def set(self, value) -> None:
        pass

    def observe(self, value) -> None:
        pass


NULL_METRIC = _NullMetric()


class MetricsRegistry:
    """Get-or-create registry of named metrics."""

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, cls, name: str, help: str, **kw):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, help, **kw)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as {metric.kind}, "
                f"not {cls.kind}"
            )
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(Gauge, name, help)

    def histogram(self, name: str, help: str = "",
                  scale: float = 1.0) -> Histogram:
        return self._get(Histogram, name, help, scale=scale)

    def get(self, name: str):
        return self._metrics.get(name)

    def value(self, name: str, default=0):
        """Current value of a counter/gauge (``default`` if unregistered)."""
        metric = self._metrics.get(name)
        return default if metric is None else metric.value

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self) -> Iterator:
        return iter(sorted(self._metrics.values(), key=lambda m: m.name))

    def snapshot(self) -> dict:
        """Machine-readable dump, one entry per metric."""
        out: dict[str, dict] = {}
        for metric in self:
            entry: dict = {"type": metric.kind}
            if isinstance(metric, Histogram):
                entry.update(count=metric.count, sum=metric.sum,
                             mean=metric.mean, min=metric.min,
                             max=metric.max,
                             buckets={str(k): v for k, v
                                      in sorted(metric.buckets.items())})
            else:
                entry["value"] = metric.value
            if metric.help:
                entry["help"] = metric.help
            out[metric.name] = entry
        return out

    def render(self, prefix: str | None = None) -> str:
        """Aligned text dump (optionally only names under ``prefix``)."""
        rows = []
        for metric in self:
            if prefix and not metric.name.startswith(prefix):
                continue
            if isinstance(metric, Histogram):
                value = (f"n={metric.count} sum={metric.sum:.4g} "
                         f"mean={metric.mean:.4g}")
            elif isinstance(metric, float):  # pragma: no cover
                value = f"{metric.value:.4g}"
            else:
                v = metric.value
                value = f"{v:.4g}" if isinstance(v, float) else str(v)
            rows.append((metric.name, metric.kind, value))
        if not rows:
            return "(no metrics recorded)"
        name_w = max(len(r[0]) for r in rows) + 2
        kind_w = max(len(r[1]) for r in rows) + 2
        return "\n".join(
            f"{name.ljust(name_w)}{kind.ljust(kind_w)}{value}"
            for name, kind, value in rows
        )


class NullMetricsRegistry:
    """Registry stand-in when observability is off: every metric is the
    shared no-op handle, so pre-resolved hot-path updates cost nothing."""

    def counter(self, name: str, help: str = "") -> _NullMetric:
        return NULL_METRIC

    def gauge(self, name: str, help: str = "") -> _NullMetric:
        return NULL_METRIC

    def histogram(self, name: str, help: str = "",
                  scale: float = 1.0) -> _NullMetric:
        return NULL_METRIC

    def get(self, name: str):
        return None

    def value(self, name: str, default=0):
        return default

    def __len__(self) -> int:
        return 0

    def __iter__(self) -> Iterator:
        return iter(())

    def snapshot(self) -> dict:
        return {}

    def render(self, prefix: str | None = None) -> str:
        return "(observability disabled; no metrics)"


NULL_METRICS = NullMetricsRegistry()
