"""Metrics registry: counters, gauges and histograms for the simulator.

The scattered ad-hoc counters that :mod:`repro.sim.stats` used to scrape
(XPMEM attach totals, regcache hits, flag traffic) register here instead,
so every report reads the same numbers. A metric is created once (usually
at component setup) and updated on the hot path through a pre-resolved
handle — with observability disabled the handles are shared no-op
singletons, so the cost of an update is one attribute call.

Naming convention: dot-separated, subsystem first —
``xpmem.attaches``, ``regcache.hits``, ``flags.sets``,
``message.bytes.intra-numa`` — see docs/observability.md for the full
catalogue.
"""

from __future__ import annotations

import re
from typing import Iterator


class Counter:
    """Monotonically increasing count."""

    kind = "counter"

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0

    def inc(self, n: int | float = 1) -> None:
        self.value += n


class Gauge:
    """A value that can move both ways (levels, sizes, ratios)."""

    kind = "gauge"

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, n: float = 1) -> None:
        self.value += n

    def dec(self, n: float = 1) -> None:
        self.value -= n


class Histogram:
    """Power-of-two bucketed distribution (bytes, wait seconds, ...).

    Bucket ``i`` counts observations in ``(2**(i-1), 2**i] * scale``;
    bucket 0 counts observations ``<= scale``. ``scale`` sets the smallest
    resolvable magnitude (1 byte, 1 nanosecond, ...).
    """

    kind = "histogram"

    __slots__ = ("name", "help", "scale", "buckets", "count", "sum",
                 "min", "max")

    def __init__(self, name: str, help: str = "", scale: float = 1.0) -> None:
        self.name = name
        self.help = help
        self.scale = scale
        self.buckets: dict[int, int] = {}
        self.count = 0
        self.sum = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        scaled = value / self.scale
        bucket = 0
        while scaled > 1.0:
            scaled /= 2.0
            bucket += 1
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def bucket_bounds(self, bucket: int) -> tuple[float, float]:
        """``(low, high]`` value range the bucket covers."""
        if bucket <= 0:
            return (0.0, self.scale)
        return (self.scale * 2.0 ** (bucket - 1), self.scale * 2.0 ** bucket)

    def quantile(self, q: float) -> float | None:
        """Streaming quantile estimate from the log-bucket counts.

        The rank is located in the cumulative bucket distribution and
        interpolated linearly inside its bucket, then clamped to the
        exact observed ``[min, max]`` — so p0/p100 are exact and every
        estimate is off by at most one power-of-two bucket width.
        Returns ``None`` on an empty histogram.
        """
        if not self.count:
            return None
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        rank = q * self.count
        cumulative = 0
        for bucket in sorted(self.buckets):
            n = self.buckets[bucket]
            if cumulative + n >= rank:
                low, high = self.bucket_bounds(bucket)
                fraction = (rank - cumulative) / n
                value = low + fraction * (high - low)
                break
            cumulative += n
        else:  # pragma: no cover - rank <= count always lands above
            value = self.max
        if self.min is not None:
            value = max(value, self.min)
        if self.max is not None:
            value = min(value, self.max)
        return value

    def percentiles(self, qs: "tuple[float, ...]" = (0.5, 0.95, 0.99),
                    ) -> dict[str, float | None]:
        """``{"p50": ..., "p95": ..., "p99": ...}`` via :meth:`quantile`."""
        return {f"p{round(q * 100):d}": self.quantile(q) for q in qs}


class _NullMetric:
    """Shared do-nothing handle; every update method is a no-op."""

    kind = "null"
    name = ""
    value = 0

    __slots__ = ()

    def inc(self, n=1) -> None:
        pass

    def dec(self, n=1) -> None:
        pass

    def set(self, value) -> None:
        pass

    def observe(self, value) -> None:
        pass


NULL_METRIC = _NullMetric()


class MetricsRegistry:
    """Get-or-create registry of named metrics."""

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, cls, name: str, help: str, **kw):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, help, **kw)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as {metric.kind}, "
                f"not {cls.kind}"
            )
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(Gauge, name, help)

    def histogram(self, name: str, help: str = "",
                  scale: float = 1.0) -> Histogram:
        return self._get(Histogram, name, help, scale=scale)

    def get(self, name: str):
        return self._metrics.get(name)

    def value(self, name: str, default=0):
        """Current value of a counter/gauge (``default`` if unregistered)."""
        metric = self._metrics.get(name)
        return default if metric is None else metric.value

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self) -> Iterator:
        return iter(sorted(self._metrics.values(), key=lambda m: m.name))

    def snapshot(self) -> dict:
        """Machine-readable dump, one entry per metric."""
        out: dict[str, dict] = {}
        for metric in self:
            entry: dict = {"type": metric.kind}
            if isinstance(metric, Histogram):
                entry.update(count=metric.count, sum=metric.sum,
                             mean=metric.mean, min=metric.min,
                             max=metric.max,
                             buckets={str(k): v for k, v
                                      in sorted(metric.buckets.items())},
                             **metric.percentiles())
            else:
                entry["value"] = metric.value
            if metric.help:
                entry["help"] = metric.help
            out[metric.name] = entry
        return out

    def to_prometheus(self, prefix: str | None = None) -> str:
        """Prometheus text exposition format (version 0.0.4).

        Metric names are sanitized (``serve.jobs.completed`` →
        ``serve_jobs_completed``); histograms emit the conventional
        cumulative ``_bucket{le=...}`` series plus ``_sum``/``_count``.
        :func:`validate_prometheus` is the matching parser CI runs
        against the daemon's ``metrics`` op.
        """
        lines: list[str] = []
        for metric in self:
            if prefix and not metric.name.startswith(prefix):
                continue
            name = prometheus_name(metric.name)
            if metric.help:
                lines.append(f"# HELP {name} {metric.help}")
            lines.append(f"# TYPE {name} {metric.kind}")
            if isinstance(metric, Histogram):
                cumulative = 0
                for bucket in sorted(metric.buckets):
                    cumulative += metric.buckets[bucket]
                    le = metric.bucket_bounds(bucket)[1]
                    lines.append(
                        f'{name}_bucket{{le="{le!r}"}} {cumulative}')
                lines.append(f'{name}_bucket{{le="+Inf"}} {metric.count}')
                lines.append(f"{name}_sum {metric.sum!r}")
                lines.append(f"{name}_count {metric.count}")
            else:
                value = metric.value
                rendered = repr(value) if isinstance(value, float) \
                    else str(value)
                lines.append(f"{name} {rendered}")
        return "\n".join(lines) + ("\n" if lines else "")

    def render(self, prefix: str | None = None) -> str:
        """Aligned text dump (optionally only names under ``prefix``)."""
        rows = []
        for metric in self:
            if prefix and not metric.name.startswith(prefix):
                continue
            if isinstance(metric, Histogram):
                value = (f"n={metric.count} sum={metric.sum:.4g} "
                         f"mean={metric.mean:.4g}")
            elif isinstance(metric, float):  # pragma: no cover
                value = f"{metric.value:.4g}"
            else:
                v = metric.value
                value = f"{v:.4g}" if isinstance(v, float) else str(v)
            rows.append((metric.name, metric.kind, value))
        if not rows:
            return "(no metrics recorded)"
        name_w = max(len(r[0]) for r in rows) + 2
        kind_w = max(len(r[1]) for r in rows) + 2
        return "\n".join(
            f"{name.ljust(name_w)}{kind.ljust(kind_w)}{value}"
            for name, kind, value in rows
        )


class NullMetricsRegistry:
    """Registry stand-in when observability is off: every metric is the
    shared no-op handle, so pre-resolved hot-path updates cost nothing."""

    def counter(self, name: str, help: str = "") -> _NullMetric:
        return NULL_METRIC

    def gauge(self, name: str, help: str = "") -> _NullMetric:
        return NULL_METRIC

    def histogram(self, name: str, help: str = "",
                  scale: float = 1.0) -> _NullMetric:
        return NULL_METRIC

    def get(self, name: str):
        return None

    def value(self, name: str, default=0):
        return default

    def __len__(self) -> int:
        return 0

    def __iter__(self) -> Iterator:
        return iter(())

    def snapshot(self) -> dict:
        return {}

    def render(self, prefix: str | None = None) -> str:
        return "(observability disabled; no metrics)"

    def to_prometheus(self, prefix: str | None = None) -> str:
        return ""


NULL_METRICS = NullMetricsRegistry()


# -- Prometheus text format ---------------------------------------------------

_PROM_BAD_CHARS = re.compile(r"[^a-zA-Z0-9_:]")

#: ``metric_name{labels} value`` — the only sample shape we emit.
_PROM_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^{}]*\})?"
    r" (?P<value>[^ ]+)$")


def prometheus_name(name: str) -> str:
    """A dotted registry name as a legal Prometheus metric name."""
    name = _PROM_BAD_CHARS.sub("_", name)
    if name and name[0].isdigit():
        name = "_" + name
    return name


def validate_prometheus(text: str) -> list[str]:
    """Check a text exposition parses; returns problems (empty = ok).

    Covers what the serve-smoke CI job needs: every sample line matches
    the ``name{labels} value`` shape with a finite numeric value (or the
    literal ``+Inf`` bucket bound inside a label), every ``# TYPE`` names
    a known metric kind, and each histogram's ``_bucket`` series is
    cumulative with ``_count`` equal to its ``+Inf`` bucket.
    """
    errors: list[str] = []
    bucket_last: dict[str, float] = {}
    bucket_inf: dict[str, float] = {}
    counts: dict[str, float] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                errors.append(f"line {lineno}: malformed comment {line!r}")
            elif parts[1] == "TYPE" and (len(parts) < 4 or parts[3] not in (
                    "counter", "gauge", "histogram", "summary", "untyped")):
                errors.append(f"line {lineno}: unknown TYPE {parts[3]!r}")
            continue
        m = _PROM_SAMPLE_RE.match(line)
        if m is None:
            errors.append(f"line {lineno}: unparseable sample {line!r}")
            continue
        try:
            value = float(m.group("value"))
        except ValueError:
            errors.append(f"line {lineno}: non-numeric value "
                          f"{m.group('value')!r}")
            continue
        name = m.group("name")
        if name.endswith("_bucket"):
            base = name[:-len("_bucket")]
            if '+Inf' in (m.group("labels") or ""):
                bucket_inf[base] = value
            else:
                if value < bucket_last.get(base, 0):
                    errors.append(f"line {lineno}: non-cumulative bucket "
                                  f"series for {base!r}")
                bucket_last[base] = value
        elif name.endswith("_count"):
            counts[name[:-len("_count")]] = value
    for base, inf_value in bucket_inf.items():
        if inf_value < bucket_last.get(base, 0):
            errors.append(f"histogram {base!r}: +Inf bucket below a "
                          f"finite bucket")
        if base in counts and counts[base] != inf_value:
            errors.append(f"histogram {base!r}: _count {counts[base]} != "
                          f"+Inf bucket {inf_value}")
    return errors
