"""repro.obs — the observability layer.

Four pieces, layered on the simulator (see docs/observability.md):

* :mod:`repro.obs.spans` — hierarchical span tracing over simulated time
  (:class:`Observer`), with a shared no-op stand-in when disabled;
* :mod:`repro.obs.metrics` — the registry of counters/gauges/histograms
  every subsystem reports through;
* :mod:`repro.obs.critical_path` — walks the span/wait DAG of a finished
  run and attributes the end-to-end time per collective phase;
* :mod:`repro.obs.export` — Chrome-trace/Perfetto JSON and a text flame
  view;
* :mod:`repro.obs.svc` — wall-clock job-lifecycle telemetry for the
  sweep service (spans per served job, service metrics, a size-rotated
  event log), plus the Prometheus text exposition in
  :mod:`repro.obs.metrics`.

Enable with ``Node(topo, observe=True)``; drive a one-shot observed run
with :func:`repro.obs.runner.run_traced` or ``python -m repro trace``.
"""

from .critical_path import CriticalPathReport, PathStep, critical_path
from .export import (flame_view, from_chrome_trace, spans_to_chrome_trace,
                     to_chrome_trace, validate_chrome_trace,
                     write_chrome_trace)
from .metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                      NULL_METRICS, NullMetricsRegistry, prometheus_name,
                      validate_prometheus)
from .spans import (NULL_OBSERVER, NullObserver, Observer, SpanRecord,
                    WaitRecord)
from .svc import EventLog, JobTrace, ServiceTelemetry

__all__ = [
    "Observer", "NullObserver", "NULL_OBSERVER", "SpanRecord", "WaitRecord",
    "MetricsRegistry", "NullMetricsRegistry", "NULL_METRICS",
    "Counter", "Gauge", "Histogram",
    "critical_path", "CriticalPathReport", "PathStep",
    "to_chrome_trace", "write_chrome_trace", "validate_chrome_trace",
    "from_chrome_trace", "flame_view", "spans_to_chrome_trace",
    "ServiceTelemetry", "JobTrace", "EventLog",
    "prometheus_name", "validate_prometheus",
]
