"""Service-layer telemetry: job-lifecycle tracing for ``repro.serve``.

PR 2's observer traces one *simulated* run over simulated time; this
module traces the *service* over wall-clock time. Every job the daemon
accepts gets a lifecycle span tree —

    job                                  (submit .. publish, one track)
      queue-wait                         (submit .. first chunk dispatch)
      chunk                              (one per fairness chunk)
        cache-lookup                     (executor classification)
        worker-execute                   (simulation / pool fan-out)
      publish                            (results handed to the stream)

— recorded as plain :class:`~repro.obs.spans.SpanRecord` objects (track
= job id, Perfetto process = tenant), so a whole service session exports
through :func:`repro.obs.export.spans_to_chrome_trace` as one trace and
passes the same :func:`~repro.obs.export.validate_chrome_trace` check CI
runs on simulated-time traces.

Alongside the spans, the telemetry feeds the daemon's shared
:class:`~repro.obs.metrics.MetricsRegistry` (queue-wait / scheduling /
execution / end-to-end latency histograms with p50/p95/p99, per-tenant
queue-depth gauges and job counters, mirrored cache totals) and appends
one line per lifecycle transition to a size-rotated JSONL event log —
the durable record ``repro serve top`` and the CI smoke job read back.

Telemetry is *on* in the daemon and *off* everywhere else: a bare
:class:`~repro.exec.Executor` has no timing hooks installed and pays two
``None`` checks per sweep; simulated latencies are wall-clock-free by
construction, so golden snapshots cannot move either way.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time  # lint: disable=RC101  (service wall clock, not simulated time)
from collections import OrderedDict

from .export import spans_to_chrome_trace
from .metrics import MetricsRegistry
from .spans import SpanRecord

#: The rotated event log's base name inside the daemon state dir.
EVENT_LOG_NAME = "events.jsonl"

#: Rotate the event log when the live file would exceed this.
DEFAULT_LOG_MAX_BYTES = 1 << 20

#: Rotations kept (``events.jsonl.1`` is the newest closed segment).
DEFAULT_LOG_KEEP = 3

#: Finished job traces retained in memory for the ``trace`` op.
DEFAULT_MAX_TRACES = 256


class EventLog:
    """Append-only, size-rotated JSONL log of service lifecycle events.

    One compact JSON object per line. When an append would push the live
    file past ``max_bytes`` it is rotated (``events.jsonl`` →
    ``events.jsonl.1`` → … → ``events.jsonl.<keep>``, oldest dropped),
    so a long-lived daemon's log is bounded at roughly
    ``(keep + 1) * max_bytes``. A ``None`` path disables the log.
    """

    def __init__(self, path: str | os.PathLike | None, *,
                 max_bytes: int = DEFAULT_LOG_MAX_BYTES,
                 keep: int = DEFAULT_LOG_KEEP) -> None:
        self.path = os.fspath(path) if path is not None else None
        self.max_bytes = max_bytes
        self.keep = keep
        self.written = 0
        self.rotations = 0
        self._lock = threading.Lock()

    def append(self, record: dict) -> None:
        if self.path is None:
            return
        line = json.dumps(record, sort_keys=True,
                          separators=(",", ":")) + "\n"
        with self._lock:
            os.makedirs(os.path.dirname(self.path) or ".", exist_ok=True)
            try:
                size = os.path.getsize(self.path)
            except OSError:
                size = 0
            if size and size + len(line) > self.max_bytes:
                self._rotate()
            with open(self.path, "a") as fh:
                fh.write(line)
            self.written += 1

    def _rotate(self) -> None:
        for n in range(self.keep, 0, -1):
            src = self.path if n == 1 else f"{self.path}.{n - 1}"
            dst = f"{self.path}.{n}"
            try:
                os.replace(src, dst)
            except FileNotFoundError:
                continue
        self.rotations += 1

    def segments(self) -> list[str]:
        """Existing log files, newest first (live file leads)."""
        if self.path is None:
            return []
        out = [p for p in [self.path]
               + [f"{self.path}.{n}" for n in range(1, self.keep + 1)]
               if os.path.exists(p)]
        return out

    def records(self) -> list[dict]:
        """Every intact record across all segments, oldest first; torn
        or corrupt lines are skipped, never fatal."""
        out: list[dict] = []
        for path in reversed(self.segments()):
            with open(path) as fh:
                for line in fh:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except json.JSONDecodeError:
                        continue
                    if isinstance(record, dict):
                        out.append(record)
        return out


class JobTrace:
    """The lifecycle span tree of one served job (track = job id)."""

    __slots__ = ("job_id", "tenant", "total", "spans", "stack",
                 "submitted_at", "first_chunk_at", "last_chunk_end",
                 "finished_at", "chunks")

    def __init__(self, job_id: int, tenant: str, total: int,
                 submitted_at: float) -> None:
        self.job_id = job_id
        self.tenant = tenant
        self.total = total
        self.spans: list[SpanRecord] = []
        self.stack: list[SpanRecord] = []
        self.submitted_at = submitted_at
        self.first_chunk_at: float | None = None
        self.last_chunk_end: float | None = None
        self.finished_at: float | None = None
        self.chunks = 0

    @property
    def finished(self) -> bool:
        return self.finished_at is not None

    @property
    def wall_s(self) -> float | None:
        if self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at


class ServiceTelemetry:
    """Job-lifecycle spans, service metrics, and the rotated event log.

    One instance lives on the daemon and shares its
    :class:`MetricsRegistry`; the daemon calls the ``job_*``/``chunk_*``
    hooks from its event loop and installs :meth:`executor_phase` as the
    executor's timing hook (it fires on the worker thread — span
    mutation is lock-protected). ``enabled=False`` turns every hook into
    a cheap no-op, which is also the default posture of a bare
    :class:`~repro.exec.Executor` outside the daemon.
    """

    def __init__(self, registry: MetricsRegistry | None = None,
                 state_dir: str | os.PathLike | None = None, *,
                 enabled: bool = True,
                 max_traces: int = DEFAULT_MAX_TRACES,
                 log_max_bytes: int = DEFAULT_LOG_MAX_BYTES,
                 log_keep: int = DEFAULT_LOG_KEEP,
                 clock=None) -> None:
        self.enabled = enabled
        self.metrics = registry if registry is not None else MetricsRegistry()
        self.clock = clock or time.monotonic
        self.epoch = self.clock()
        log_path = (os.path.join(os.fspath(state_dir), EVENT_LOG_NAME)
                    if (enabled and state_dir is not None) else None)
        self.events = EventLog(log_path, max_bytes=log_max_bytes,
                               keep=log_keep)
        self.max_traces = max_traces
        self._traces: "OrderedDict[int, JobTrace]" = OrderedDict()
        self._tenant_pids: dict[str, int] = {}
        self._current: JobTrace | None = None
        self._ids = itertools.count()
        self._lock = threading.Lock()
        if not enabled:
            return
        m = self.metrics
        self._h_job = m.histogram(
            "serve.job.latency_seconds",
            "end-to-end job latency (submit to publish)", scale=1e-6)
        self._h_queue = m.histogram(
            "serve.job.queue_wait_seconds",
            "submit to first chunk dispatch", scale=1e-6)
        self._h_schedule = m.histogram(
            "serve.chunk.schedule_seconds",
            "chunk wait between readiness and dispatch", scale=1e-6)
        self._h_execute = m.histogram(
            "serve.chunk.execute_seconds",
            "wall time executing one fairness chunk", scale=1e-6)
        self._h_lookup = m.histogram(
            "serve.exec.cache_lookup_seconds",
            "executor cache-classification phase", scale=1e-6)
        self._h_worker = m.histogram(
            "serve.exec.worker_execute_seconds",
            "executor simulation/fan-out phase", scale=1e-6)
        self._c_busy = m.gauge(
            "serve.worker.busy_seconds",
            "cumulative wall seconds spent executing chunks")
        self._g_inflight = m.gauge(
            "serve.inflight.chunks", "chunks executing right now")

    # -- time -------------------------------------------------------------

    def now(self) -> float:
        """Wall seconds since the telemetry epoch (daemon start)."""
        return self.clock() - self.epoch

    # -- span plumbing ----------------------------------------------------

    def _open(self, trace: JobTrace, name: str, cat: str,
              args: dict | None = None) -> SpanRecord:
        parent = trace.stack[-1].id if trace.stack else None
        rec = SpanRecord(next(self._ids), name, cat, trace.job_id,
                         self.now(), None, parent, args)
        trace.stack.append(rec)
        return rec

    def _close(self, trace: JobTrace, name: str | None = None,
               args: dict | None = None) -> None:
        if not trace.stack:
            return
        if name is not None and trace.stack[-1].name != name:
            return
        rec = trace.stack.pop()
        rec.end = self.now()
        if args:
            rec.args = {**(rec.args or {}), **args}
        trace.spans.append(rec)

    def _tenant_pid(self, tenant: str) -> int:
        pid = self._tenant_pids.get(tenant)
        if pid is None:
            pid = len(self._tenant_pids)
            self._tenant_pids[tenant] = pid
        return pid

    # -- lifecycle hooks (called by the daemon) ---------------------------

    def job_submitted(self, job) -> None:
        """A job was accepted: open its root + queue-wait spans."""
        if not self.enabled:
            return
        with self._lock:
            trace = JobTrace(job.id, job.tenant, job.total, self.now())
            self._traces[job.id] = trace
            while len(self._traces) > self.max_traces:
                self._traces.popitem(last=False)
            self._tenant_pid(job.tenant)
            self._open(trace, "job", "job",
                       {"tenant": job.tenant, "total": job.total})
            self._open(trace, "queue-wait", "queue")
            self.metrics.counter(
                f"serve.tenant.jobs.{job.tenant}",
                "jobs submitted by this tenant").inc()
        self.events.append({"event": "submit", "t": round(self.now(), 6),
                            "job": job.id, "tenant": job.tenant,
                            "requests": job.total})

    def chunk_started(self, job, indices: "list[int]") -> None:
        """A chunk of ``job`` was dispatched to the executor."""
        if not self.enabled:
            return
        with self._lock:
            trace = self._traces.get(job.id)
            if trace is None:
                return
            now = self.now()
            if trace.first_chunk_at is None:
                trace.first_chunk_at = now
                self._close(trace, "queue-wait")
                self._h_queue.observe(now - trace.submitted_at)
            ready_since = (trace.last_chunk_end
                           if trace.last_chunk_end is not None
                           else trace.submitted_at)
            self._h_schedule.observe(max(0.0, now - ready_since))
            trace.chunks += 1
            self._open(trace, "chunk", "chunk",
                       {"index": trace.chunks, "requests": len(indices)})
            self._current = trace
            self._g_inflight.set(1)

    def executor_phase(self, phase: str, seconds: float,
                       count: int = 0) -> None:
        """Executor timing hook: a ``cache-lookup`` or ``worker-execute``
        phase of the in-flight chunk finished (runs on the worker
        thread)."""
        if not self.enabled:
            return
        with self._lock:
            trace = self._current
            now = self.now()
            if trace is not None and trace.stack:
                parent = trace.stack[-1].id
                rec = SpanRecord(next(self._ids), phase, "exec",
                                 trace.job_id, max(0.0, now - seconds), now,
                                 parent, {"requests": count})
                trace.spans.append(rec)
            if phase == "cache-lookup":
                self._h_lookup.observe(seconds)
            elif phase == "worker-execute":
                self._h_worker.observe(seconds)

    def chunk_finished(self, job, indices: "list[int]", results,
                       wall_s: float) -> None:
        """The in-flight chunk of ``job`` completed (results recorded)."""
        if not self.enabled:
            return
        new = sum(1 for r in results
                  if r is not None and not r.cached and r.error is None)
        cached = sum(1 for r in results if r is not None and r.cached)
        errors = len(list(indices)) - new - cached
        with self._lock:
            trace = self._traces.get(job.id)
            if trace is not None:
                trace.last_chunk_end = self.now()
                self._close(trace, "chunk",
                            {"new": new, "cached": cached,
                             "errors": errors})
            self._current = None
            self._h_execute.observe(wall_s)
            self._c_busy.inc(wall_s)
            self._g_inflight.set(0)
        self.events.append({"event": "chunk", "t": round(self.now(), 6),
                            "job": job.id, "tenant": job.tenant,
                            "requests": len(list(indices)), "new": new,
                            "cached": cached, "errors": errors,
                            "wall_s": round(wall_s, 6)})

    def job_finished(self, job) -> None:
        """Every chunk of ``job`` is done: publish + close the tree."""
        if not self.enabled:
            return
        with self._lock:
            trace = self._traces.get(job.id)
            if trace is None or trace.finished:
                return
            publish = self._open(trace, "publish", "publish")
            self._close(trace)  # publish (instantaneous on this clock)
            publish.start = (trace.last_chunk_end
                             if trace.last_chunk_end is not None
                             else publish.start)
            trace.finished_at = self.now()
            # Close the root (and any stragglers, e.g. queue-wait on a
            # job whose every chunk errored before dispatch).
            while trace.stack:
                self._close(trace)
            self._h_job.observe(trace.wall_s)
            self.metrics.counter(
                f"serve.tenant.completed.{job.tenant}",
                "jobs fully served for this tenant").inc()
        self.events.append({
            "event": "done", "t": round(self.now(), 6), "job": job.id,
            "tenant": job.tenant, "requests": job.total, "new": job.new,
            "cached": job.cached, "errors": job.errors,
            "wall_s": round(trace.wall_s, 6)})

    # -- scraped state (cache, queue) -------------------------------------

    def scrape_cache(self, stats) -> None:
        """Mirror a :class:`~repro.exec.CacheStats` snapshot into gauges
        so the ``metrics`` op and ``serve top`` see store totals."""
        if not self.enabled:
            return
        m = self.metrics
        m.gauge("serve.cache.hits", "result-cache hits").set(stats.hits)
        m.gauge("serve.cache.misses", "result-cache misses").set(
            stats.misses)
        m.gauge("serve.cache.entries",
                "entries in the current generation").set(stats.entries)
        m.gauge("serve.cache.evictions",
                "entries LRU-evicted since daemon start").set(
            stats.evictions)
        m.gauge("serve.cache.quarantined",
                "corrupt entries quarantined since daemon start").set(
            stats.quarantined)

    def update_queue(self, tenants: dict) -> None:
        """Refresh per-tenant queue-depth gauges from
        :meth:`FairScheduler.tenants` (tenants that drained read 0)."""
        if not self.enabled:
            return
        m = self.metrics
        for tenant in self._tenant_pids:
            depth = tenants.get(tenant, {}).get("requests", 0)
            m.gauge(f"serve.queue.depth.{tenant}",
                    "pending requests for this tenant").set(depth)

    # -- export -----------------------------------------------------------

    def job_ids(self) -> list[int]:
        return list(self._traces)

    def get_trace(self, job_id: int) -> JobTrace | None:
        return self._traces.get(job_id)

    def job_wall(self, job_id: int) -> float | None:
        trace = self._traces.get(job_id)
        return trace.wall_s if trace is not None else None

    def trace_doc(self, job_id: int | None = None) -> dict | None:
        """Perfetto/Chrome-trace document for one job (or the whole
        retained session). ``None`` when the job is unknown or nothing
        has been traced yet."""
        if not self.enabled:
            return None
        with self._lock:
            if job_id is not None:
                trace = self._traces.get(job_id)
                traces = [trace] if trace is not None else []
            else:
                traces = list(self._traces.values())
            if not traces:
                return None
            spans: list[SpanRecord] = []
            thread_names: dict[int, tuple[int, str]] = {}
            process_names: dict[int, str] = {}
            for trace in traces:
                pid = self._tenant_pid(trace.tenant)
                process_names[pid] = f"tenant {trace.tenant}"
                thread_names[trace.job_id] = (pid, f"job {trace.job_id}")
                spans.extend(trace.spans)
                spans.extend(rec for rec in trace.stack)  # still open
            now = self.now()
            closed = [rec if rec.end is not None else
                      SpanRecord(rec.id, rec.name, rec.cat, rec.track,
                                 rec.start, now, rec.parent, rec.args)
                      for rec in spans]
            return spans_to_chrome_trace(
                closed, thread_names=thread_names,
                process_names=process_names,
                other_data={
                    "tool": "repro.obs.svc",
                    "clock": "wall (seconds since daemon start)",
                    "jobs": len(traces),
                    "spans": len(closed),
                    "metrics": self.metrics.snapshot(),
                })
