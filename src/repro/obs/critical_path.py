"""Critical-path analysis over the span/wait DAG of a finished run.

The question Fig. 3 / Table II answers by hand — *which phase actually
bounds this collective* — is answered mechanically here: start at the
last instant of the run and walk backwards; whenever the current process
was blocked, jump to the process whose write released it (the engine
records the waker of every satisfied wait). The result is a chain of
segments that tiles ``[0, sim_time]`` exactly: each segment is either
*active* work attributed to the innermost span covering it (``xhc.fanout``,
``copy``, ...) or residual *wait* time nobody's activity explains
(external latency such as the wake-up line fetch).

``by_phase`` sums to the simulated end time by construction — the
machine-readable "why is this slower" report.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..node import Node
    from .spans import Observer, SpanRecord, WaitRecord

# Ignore float dust when comparing simulated times.
_EPS = 1e-15


@dataclass
class PathStep:
    """One segment of the critical path (chronological order)."""

    track: int
    track_name: str
    kind: str          # "active" | "wait"
    phase: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class CriticalPathReport:
    total: float
    end_track: int
    steps: list[PathStep] = field(default_factory=list)
    by_phase: dict[str, float] = field(default_factory=dict)

    @property
    def phase_sum(self) -> float:
        return sum(self.by_phase.values())

    def to_json(self) -> dict:
        return {
            "total_s": self.total,
            "end_track": self.end_track,
            "phases": [
                {"phase": name, "seconds": secs,
                 "share": secs / self.total if self.total else 0.0}
                for name, secs in sorted(self.by_phase.items(),
                                         key=lambda kv: -kv[1])
            ],
            "steps": [
                {"track": s.track, "name": s.track_name, "kind": s.kind,
                 "phase": s.phase, "start_s": s.start, "end_s": s.end}
                for s in self.steps
            ],
        }

    def render(self, show_steps: bool = False) -> str:
        tracks = {s.track for s in self.steps}
        lines = [
            f"critical path  {self.total * 1e6:.2f} us  "
            f"({len(self.steps)} segment(s) across {len(tracks)} track(s))",
            f"{'phase':<32}{'us':>12}{'%':>8}",
            "-" * 52,
        ]
        for name, secs in sorted(self.by_phase.items(), key=lambda kv: -kv[1]):
            share = 100.0 * secs / self.total if self.total else 0.0
            lines.append(f"{name:<32}{secs * 1e6:>12.2f}{share:>8.1f}")
        lines.append("-" * 52)
        lines.append(f"{'total':<32}{self.phase_sum * 1e6:>12.2f}"
                     f"{100.0 if self.total else 0.0:>8.1f}")
        if show_steps:
            lines.append("")
            for s in self.steps:
                lines.append(
                    f"  [{s.start * 1e6:10.2f} .. {s.end * 1e6:10.2f}] "
                    f"{s.kind:<7}{s.phase:<28}{s.track_name}"
                )
        return "\n".join(lines)


def _attribute(spans: list["SpanRecord"], lo: float, hi: float,
               fallback: str) -> list[tuple[str, float, float]]:
    """Chop [lo, hi] at span boundaries; each piece goes to the innermost
    (shortest) covering span, or ``fallback`` when none covers it."""
    if hi - lo <= _EPS:
        return []
    points = {lo, hi}
    for s in spans:
        if s.end <= lo + _EPS or s.start >= hi - _EPS:
            continue
        points.add(max(lo, s.start))
        points.add(min(hi, s.end))
    ordered = sorted(points)
    out: list[tuple[str, float, float]] = []
    for a, b in zip(ordered, ordered[1:]):
        if b - a <= _EPS:
            continue
        mid = (a + b) / 2.0
        best: "SpanRecord | None" = None
        for s in spans:
            if s.start > mid:
                break
            if s.end > mid and (best is None
                                or (s.end - s.start) < (best.end - best.start)):
                best = s
        name = best.name if best is not None else fallback
        if out and out[-1][0] == name and abs(out[-1][2] - a) <= _EPS:
            out[-1] = (name, out[-1][1], b)
        else:
            out.append((name, a, b))
    return out


def critical_path(node: "Node", end_track: int | None = None,
                  max_steps: int = 1_000_000) -> CriticalPathReport:
    """Walk the wait-dependency DAG backwards from the end of the run."""
    obs: "Observer" = node.obs
    if not obs.enabled:
        raise ValueError(
            "critical_path needs an observed run; construct the Node with "
            "observe=True (see docs/observability.md)"
        )
    engine = node.engine
    obs.flush_open()

    # Attribution spans per track (waits are walked separately).
    tree = {
        track: [s for s in spans if s.cat != "wait"]
        for track, spans in obs.span_tree().items()
    }
    waits: dict[int, list["WaitRecord"]] = {}
    for w in obs.waits:
        if w.end is not None:
            waits.setdefault(w.track, []).append(w)
    wait_ends: dict[int, list[float]] = {}
    for track, ws in waits.items():
        ws.sort(key=lambda w: w.end)
        wait_ends[track] = [w.end for w in ws]

    if end_track is None:
        finished = [p for p in engine.processes if p.finish_time is not None]
        if finished:
            last = max(finished, key=lambda p: (p.finish_time, p.pid))
            end_track = last.pid
        else:
            end_track = next(iter(tree), 0)

    total = engine.now
    report = CriticalPathReport(total=total, end_track=end_track)
    raw: list[PathStep] = []
    track = end_track
    t = total

    def emit_active(track: int, lo: float, hi: float) -> None:
        name = obs.track_name(track)
        for phase, a, b in _attribute(tree.get(track, []), lo, hi,
                                      "(untracked)"):
            raw.append(PathStep(track, name, "active", phase, a, b))

    steps = 0
    while t > _EPS and steps < max_steps:
        steps += 1
        prev = (track, t)
        ends = wait_ends.get(track)
        idx = bisect_right(ends, t + _EPS) - 1 if ends else -1
        if idx < 0:
            emit_active(track, 0.0, t)
            break
        w = waits[track][idx]
        emit_active(track, w.end, t)
        if w.waker is None or w.woke_at is None or w.waker == track:
            # No recorded dependency (already-satisfied wait or external):
            # charge the blocked interval to the wait target itself.
            raw.append(PathStep(track, obs.track_name(track), "wait",
                                f"wait:{w.group}", w.start, w.end))
            t = w.start
        else:
            # Wake-up latency (write -> resumed) stays with the waiter;
            # the time before the write belongs to the waker's activity.
            raw.append(PathStep(track, obs.track_name(track), "wait",
                                f"wait:{w.group}", w.woke_at, w.end))
            t = w.woke_at
            track = w.waker
        if (track, t) == prev:  # zero-length wait: no further progress
            break

    raw.reverse()
    report.steps = [s for s in raw if s.duration > _EPS]
    for s in report.steps:
        report.by_phase[s.phase] = \
            report.by_phase.get(s.phase, 0.0) + s.duration
    return report
