"""Trace export: Chrome-trace/Perfetto JSON and a text flame view.

:func:`to_chrome_trace` emits the Trace Event Format that both
``chrome://tracing`` and https://ui.perfetto.dev load directly: one
Perfetto *process* per simulated core (several simulated processes — XHC's
reducer/monitor helper roles — share a core, exactly as they share it in
the simulation) and one *thread* per simulated process. Spans become
complete ("X") events, logical messages become instants, and the metrics
registry is appended under ``otherData``.

:func:`validate_chrome_trace` is the schema check CI runs against every
exported trace; :func:`from_chrome_trace` round-trips a document back
into span records for testing and offline analysis.
"""

from __future__ import annotations

import json
import os
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..node import Node
    from .spans import Observer

from .spans import SETUP_TRACK, SpanRecord

# Perfetto wants non-negative integer pids; park the setup track high.
_SETUP_PID = 1_000_000


def _pid_of(core: int) -> int:
    return core if core >= 0 else _SETUP_PID


def spans_to_chrome_trace(spans, *, thread_names: "dict[int, tuple[int, str]]",
                          process_names: "dict[int, str]",
                          other_data: dict | None = None) -> dict:
    """Generic Trace Event document from closed :class:`SpanRecord`\\ s.

    ``thread_names`` maps a span track to ``(pid, thread label)``;
    ``process_names`` labels each pid. This is the shared back end for
    both simulated-time traces (:func:`to_chrome_trace`) and the serve
    daemon's wall-clock job-lifecycle traces
    (:meth:`repro.obs.svc.ServiceTelemetry.trace_doc`) — both produce
    documents :func:`validate_chrome_trace` accepts.
    """
    events: list[dict] = []
    for pid in sorted(process_names):
        events.append({
            "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
            "args": {"name": process_names[pid]},
        })
        events.append({
            "ph": "M", "name": "process_sort_index", "pid": pid,
            "tid": 0, "args": {"sort_index": pid},
        })
    for track in sorted(thread_names):
        pid, label = thread_names[track]
        events.append({
            "ph": "M", "name": "thread_name", "pid": pid, "tid": track,
            "args": {"name": label},
        })
    for span in spans:
        if span.end is None:
            continue
        pid = thread_names.get(span.track, (0, ""))[0]
        event = {
            "ph": "X", "name": span.name, "cat": span.cat,
            "ts": span.start * 1e6, "dur": (span.end - span.start) * 1e6,
            "pid": pid, "tid": span.track,
        }
        if span.args:
            event["args"] = {k: v for k, v in span.args.items()
                             if isinstance(v, (int, float, str, bool))}
        events.append(event)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ns",
        "otherData": dict(other_data or {}),
    }


def to_chrome_trace(node: "Node", include_metrics: bool = True) -> dict:
    """Export an observed run as a Trace Event Format document."""
    obs: "Observer" = node.obs
    if not obs.enabled:
        raise ValueError(
            "trace export needs an observed run; construct the Node with "
            "observe=True (see docs/observability.md)"
        )
    obs.flush_open()
    events: list[dict] = []
    seen_cores: set[int] = set()
    for track, (name, core) in sorted(obs.tracks.items()):
        pid = _pid_of(core)
        if pid not in seen_cores:
            seen_cores.add(pid)
            events.append({
                "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
                "args": {"name": "setup" if core < 0 else f"core {core}"},
            })
            events.append({
                "ph": "M", "name": "process_sort_index", "pid": pid,
                "tid": 0, "args": {"sort_index": pid},
            })
        events.append({
            "ph": "M", "name": "thread_name", "pid": pid, "tid": track,
            "args": {"name": name},
        })
    for span in obs.spans:
        if span.end is None:
            continue
        core = obs.track_core(span.track)
        event = {
            "ph": "X", "name": span.name, "cat": span.cat,
            "ts": span.start * 1e6, "dur": (span.end - span.start) * 1e6,
            "pid": _pid_of(core), "tid": span.track,
        }
        if span.args:
            event["args"] = {k: v for k, v in span.args.items()
                             if isinstance(v, (int, float, str, bool))}
        events.append(event)
    for t, track, label, meta in obs.instants:
        core = obs.track_core(track)
        events.append({
            "ph": "i", "name": label, "cat": "instant", "s": "t",
            "ts": t * 1e6, "pid": _pid_of(core), "tid": track,
            "args": {k: v for k, v in meta.items()
                     if isinstance(v, (int, float, str, bool))},
        })
    doc = {
        "traceEvents": events,
        "displayTimeUnit": "ns",
        "otherData": {
            "tool": "repro.obs",
            "sim_time_s": node.engine.now,
            "events_processed": node.engine.events_processed,
            "spans": len(obs.spans),
            "spans_dropped": obs.dropped,
        },
    }
    if include_metrics:
        doc["otherData"]["metrics"] = obs.metrics.snapshot()
    return doc


def write_chrome_trace(path: str | os.PathLike, node: "Node") -> dict:
    """Export + write to ``path`` (creating directories); returns the doc."""
    doc = to_chrome_trace(node)
    path = os.fspath(path)
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=1)
        fh.write("\n")
    return doc


_REQUIRED_BY_PHASE = {
    "X": ("name", "ts", "dur", "pid", "tid"),
    "M": ("name", "pid", "args"),
    "i": ("name", "ts", "pid", "tid"),
}


def validate_chrome_trace(doc: dict) -> list[str]:
    """Schema check for an exported document; returns a list of problems
    (empty = loadable by Perfetto/chrome://tracing). CI runs this against
    the trace-smoke artifact."""
    errors: list[str] = []
    if not isinstance(doc, dict):
        return ["document is not a JSON object"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["missing traceEvents array"]
    if not events:
        errors.append("traceEvents is empty")
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            errors.append(f"event {i} is not an object")
            continue
        ph = ev.get("ph")
        required = _REQUIRED_BY_PHASE.get(ph)
        if required is None:
            errors.append(f"event {i}: unsupported phase {ph!r}")
            continue
        for key in required:
            if key not in ev:
                errors.append(f"event {i} ({ph}): missing {key!r}")
        for key in ("ts", "dur"):
            if key in ev and (not isinstance(ev[key], (int, float))
                              or ev[key] < 0):
                errors.append(f"event {i}: {key} must be a non-negative "
                              f"number, got {ev[key]!r}")
        for key in ("pid", "tid"):
            if key in ev and not isinstance(ev[key], int):
                errors.append(f"event {i}: {key} must be an integer")
        if ph == "M" and "name" not in ev.get("args", {}) \
                and "sort_index" not in ev.get("args", {}):
            errors.append(f"event {i}: metadata without args payload")
        if len(errors) > 20:
            errors.append("... (further problems suppressed)")
            break
    return errors


def from_chrome_trace(doc: dict) -> list[SpanRecord]:
    """Rebuild span records from an exported document (round-trip path).

    Only complete ("X") events come back; timestamps return to seconds.
    Parent links are reconstructed from time-nesting per track.
    """
    spans: list[SpanRecord] = []
    for i, ev in enumerate(doc.get("traceEvents", ())):
        if ev.get("ph") != "X":
            continue
        spans.append(SpanRecord(
            id=i, name=ev["name"], cat=ev.get("cat", ""),
            track=ev["tid"], start=ev["ts"] / 1e6,
            end=(ev["ts"] + ev["dur"]) / 1e6,
            args=ev.get("args"),
        ))
    by_track: dict[int, list[SpanRecord]] = {}
    for span in spans:
        by_track.setdefault(span.track, []).append(span)
    for group in by_track.values():
        group.sort(key=lambda s: (s.start, -(s.end - s.start)))
        stack: list[SpanRecord] = []
        for span in group:
            while stack and stack[-1].end <= span.start + 1e-15:
                stack.pop()
            span.parent = stack[-1].id if stack else None
            stack.append(span)
    return spans


# -- text flame view ----------------------------------------------------------


def flame_view(node: "Node", width: int = 40, min_share: float = 0.005,
               ) -> str:
    """Aggregate spans into a text flame tree (self time per stack path).

    Each line is one call-stack path summed across all tracks: inclusive
    time, a proportional bar, and the span name indented by stack depth —
    the quick terminal answer to "where did the time go" before opening
    the full trace in Perfetto.
    """
    obs: "Observer" = node.obs
    if not obs.enabled:
        return "(observability disabled; no spans)"
    obs.flush_open()
    by_id = {s.id: s for s in obs.spans}
    totals: dict[tuple[str, ...], float] = {}
    for span in obs.spans:
        if span.end is None:
            continue
        path = [span.name]
        parent = span.parent
        depth = 0
        while parent is not None and depth < 64:
            rec = by_id.get(parent)
            if rec is None:
                break
            path.append(rec.name)
            parent = rec.parent
            depth += 1
        totals_key = tuple(reversed(path))
        totals[totals_key] = totals.get(totals_key, 0.0) + span.duration
    if not totals:
        return "(no spans recorded)"
    # Roll up: a path's inclusive time is its own plus all descendants'.
    inclusive: dict[tuple[str, ...], float] = {}
    for path, secs in totals.items():
        for depth in range(1, len(path) + 1):
            prefix = path[:depth]
            inclusive[prefix] = inclusive.get(prefix, 0.0) + secs
    top = max(v for k, v in inclusive.items() if len(k) == 1)
    lines = ["flame view (inclusive us, all tracks)",
             "-" * (width + 30)]
    for path in sorted(inclusive,
                       key=lambda p: tuple((-inclusive[p[:d + 1]], p[d])
                                           for d in range(len(p)))):
        secs = inclusive[path]
        if top and secs / top < min_share:
            continue
        bar = "#" * max(1, int(round(width * secs / top))) if top else ""
        indent = "  " * (len(path) - 1)
        lines.append(f"{secs * 1e6:>12.2f}  {indent}{path[-1]:<28}{bar}")
    return "\n".join(lines)
