"""One-shot observed runs: the engine behind ``python -m repro trace``.

Runs a single collective operation on a fresh node with observability on
and hands back the node, ready for critical-path analysis and trace
export. Kept separate from the OSU drivers because a trace wants exactly
one un-warmed operation — the critical path of a whole warmup+iters sweep
answers a different (and muddier) question.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..node import Node
from ..topology import get_system

if TYPE_CHECKING:  # pragma: no cover
    pass

TRACEABLE_COLLS = ("bcast", "allreduce", "reduce", "barrier", "gather",
                   "alltoall")


def run_traced(
    system: str,
    coll: str = "bcast",
    size: int = 65536,
    nranks: int | None = None,
    component: str = "xhc-tree",
    root: int = 0,
    observe: bool | str = True,
) -> Node:
    """Run one ``coll`` of ``size`` bytes under full observability.

    ``component`` is a name from :data:`repro.bench.components.COMPONENTS`.
    Returns the node; its ``obs`` holds the spans/metrics and its engine
    the finished processes.
    """
    from ..bench.components import COMPONENTS
    from ..bench.osu import run_collective

    if coll not in TRACEABLE_COLLS:
        raise ValueError(
            f"cannot trace {coll!r}; choose from {TRACEABLE_COLLS}")
    if component == "xhc":  # convenience alias for the paper's default
        component = "xhc-tree"
    try:
        factory = COMPONENTS[component]
    except KeyError:
        raise ValueError(
            f"unknown component {component!r}; choose from "
            f"{sorted(COMPONENTS)}"
        ) from None
    size = max(size, 1)  # the OSU driver's scratch buffer must be non-empty
    topo = get_system(system)
    node = Node(topo, data_movement=False, observe=observe)
    if nranks is None:
        nranks = topo.n_cores
    run_collective(coll, system, nranks, factory, size,
                   warmup=0, iters=1, modify=False, root=root, node=node)
    return node
