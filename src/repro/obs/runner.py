"""One-shot observed runs: the engine behind ``python -m repro trace``.

Runs a single collective operation with observability on and hands back
the node, ready for critical-path analysis and trace export. The run goes
through :func:`repro.exec.run_inline` — instrumented requests execute in
this process with the live node attached, never through the pool or the
result cache. A trace wants exactly one un-warmed operation: the critical
path of a whole warmup+iters sweep answers a different (and muddier)
question.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..options import RunOptions

if TYPE_CHECKING:  # pragma: no cover
    from ..node import Node

TRACEABLE_COLLS = ("bcast", "allreduce", "reduce", "barrier", "gather",
                   "alltoall")


def run_traced(
    system: str,
    coll: str = "bcast",
    size: int = 65536,
    nranks: int | None = None,
    component: str = "xhc-tree",
    root: int = 0,
    observe: bool | str = True,
) -> "Node":
    """Run one ``coll`` of ``size`` bytes under full observability.

    ``component`` is a name from :data:`repro.bench.components.COMPONENTS`.
    Returns the node; its ``obs`` holds the spans/metrics and its engine
    the finished processes.
    """
    from .. import exec as exec_mod
    from ..bench.components import COMPONENTS
    from ..topology import get_system

    if coll not in TRACEABLE_COLLS:
        raise ValueError(
            f"cannot trace {coll!r}; choose from {TRACEABLE_COLLS}")
    if component == "xhc":  # convenience alias for the paper's default
        component = "xhc-tree"
    if component not in COMPONENTS:
        raise ValueError(
            f"unknown component {component!r}; choose from "
            f"{sorted(COMPONENTS)}")
    if nranks is None:
        nranks = get_system(system).n_cores
    request = exec_mod.RunRequest(
        system=system, collective=coll,
        size=max(size, 1),  # the OSU scratch buffer must be non-empty
        nranks=nranks, component=component, warmup=0, iters=1,
        modify=False, root=root,
        options=RunOptions(data_movement=False, observe=observe))
    result = exec_mod.run_inline(request)
    if result.error is not None:
        from ..errors import DeadlockError
        raise DeadlockError(result.error["message"])
    return result.node
