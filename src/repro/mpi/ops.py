"""MPI reduction operations."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np


@dataclass(frozen=True)
class ReduceOp:
    name: str
    ufunc: Callable

    def __call__(self, a, b):
        return self.ufunc(a, b)


SUM = ReduceOp("MPI_SUM", np.add)
PROD = ReduceOp("MPI_PROD", np.multiply)
MAX = ReduceOp("MPI_MAX", np.maximum)
MIN = ReduceOp("MPI_MIN", np.minimum)
