"""MPI reduction operations.

Like :mod:`.datatypes`, the numpy ufunc is resolved lazily so that
latency-only event-engine runs work without numpy installed: primitives
then carry ``op.ufunc is None``, which is fine because nothing applies
it until values actually move.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..compat import get_numpy


@dataclass(frozen=True)
class ReduceOp:
    name: str
    ufunc_name: str
    _cache: list = field(default_factory=list, repr=False, compare=False)

    @property
    def ufunc(self):
        """The numpy ufunc, or ``None`` when numpy is not installed."""
        if not self._cache:
            np = get_numpy()
            self._cache.append(
                None if np is None else getattr(np, self.ufunc_name))
        return self._cache[0]

    def __call__(self, a, b):
        return self.ufunc(a, b)


SUM = ReduceOp("MPI_SUM", "add")
PROD = ReduceOp("MPI_PROD", "multiply")
MAX = ReduceOp("MPI_MAX", "maximum")
MIN = ReduceOp("MPI_MIN", "minimum")
