"""Rank-to-core mapping policies.

The Fig. 9a experiment contrasts two ``mpirun`` binding policies: ``map-core``
(ranks fill cores sequentially) and ``map-numa`` (ranks round-robin across
NUMA nodes). Topology-unaware components' communication patterns interact
badly with the latter; XHC adapts (its hierarchy is built from the actual
placement).
"""

from __future__ import annotations

from typing import Sequence

from ..errors import MPIError
from ..topology.objects import ObjKind, Topology


def map_ranks(
    topo: Topology, nranks: int, policy: str | Sequence[int] = "core"
) -> list[int]:
    """Return core index per rank under the given policy.

    ``policy`` may also be an explicit rank->core permutation.
    """
    if not isinstance(policy, str):
        cores = list(policy)
        if len(cores) != nranks:
            raise MPIError(
                f"explicit mapping has {len(cores)} entries for {nranks} ranks"
            )
        if len(set(cores)) != len(cores):
            raise MPIError("explicit mapping assigns one core to two ranks")
        for c in cores:
            if not 0 <= c < topo.n_cores:
                raise MPIError(f"core {c} out of range")
        return cores

    if nranks > topo.n_cores:
        raise MPIError(
            f"{nranks} ranks exceed the {topo.n_cores} cores of {topo.name}"
        )
    if policy == "core":
        return list(range(nranks))
    if policy == "numa":
        # Round-robin over NUMA nodes, sequential within each node.
        groups = [list(numa.cpuset()) for numa in topo.objects(ObjKind.NUMA)]
        for g in groups:
            g.sort()
        cores: list[int] = []
        cursor = [0] * len(groups)
        g = 0
        while len(cores) < nranks:
            if cursor[g] < len(groups[g]):
                cores.append(groups[g][cursor[g]])
                cursor[g] += 1
            g = (g + 1) % len(groups)
        return cores
    raise MPIError(f"unknown mapping policy {policy!r}")
