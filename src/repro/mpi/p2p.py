"""Point-to-point transport: eager + rendezvous over shared memory.

This is the layer the `tuned`-style components build their trees on. Its
per-message overheads (matching, rendezvous handshake, copy-in-copy-out for
eager traffic) are exactly the costs the paper's *direct* implementations
avoid (SSI).

Protocols, per message size against ``eager_limit``:

* **eager** — sender copies into a per-channel shared slot (copy-in), bumps
  its `sent` flag; receiver copies out (copy-out), bumps `consumed`.
* **rendezvous** — sender exposes + publishes the buffer and raises RTS;
  receiver pulls the payload with a single copy through SMSC
  (XPMEM/CMA/KNEM) and raises FIN. With SMSC disabled the payload is
  pipelined through the shared slot in CICO fashion instead.

Each (src, dst, tag) channel is ordered; eager and rendezvous messages use
separate monotonic sequence counters so the two flag streams stay
monotonic even when sizes straddle the eager limit. Both sides must post
matching sizes (the protocol choice is derived from the size — a normal
property of collectives traffic, which this layer exists to serve).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from ..errors import MPIError
from ..sim import primitives as P
from ..sim.syncobj import Flag
from ..shmem.segment import SharedSegment

if TYPE_CHECKING:  # pragma: no cover
    from ..memory.address_space import BufView
    from .world import Communicator, RankCtx

# Software overheads of the point-to-point layer: descriptor setup and
# progression on the sender; tag matching + request completion on the
# receiver; rendezvous adds protocol processing per message. These are the
# costs the paper's *direct* collectives avoid (SSI) and are calibrated to
# UCX-class stacks.
SEND_OVERHEAD = 250e-9
MATCH_OVERHEAD = 500e-9
RNDV_SETUP = 1200e-9

EAGER_LIMIT = 8 * 1024
CICO_PIPELINE_SLOT = 64 * 1024


class Channel:
    """Ordered message channel for one (src, dst, tag) triple."""

    def __init__(self, comm: "Communicator", src: "RankCtx", dst: "RankCtx",
                 tag: int) -> None:
        self.src = src
        self.dst = dst
        self.tag = tag
        self.seg = SharedSegment(
            src.space, f"p2p.{src.rank}->{dst.rank}.t{tag}",
            EAGER_LIMIT + CICO_PIPELINE_SLOT,
        )
        self.slot = self.seg.reserve("eager", EAGER_LIMIT)
        # Separate staging area for the no-SMSC rendezvous pipeline, so an
        # in-flight eager payload is never clobbered.
        self.pipe = self.seg.reserve("pipe", CICO_PIPELINE_SLOT)
        name = f"{src.rank}.{dst.rank}.{tag}"
        self.sent = Flag(f"p2p.sent.{name}", src.core)
        self.consumed = Flag(f"p2p.cons.{name}", dst.core)
        self.rts = Flag(f"p2p.rts.{name}", src.core)
        self.fin = Flag(f"p2p.fin.{name}", dst.core)
        # Cumulative byte counters of the no-SMSC rendezvous pipeline.
        self.pipe_prod = Flag(f"p2p.pprod.{name}", src.core)
        self.pipe_cons = Flag(f"p2p.pcons.{name}", dst.core)
        # Bytes ever pipelined, tracked independently per side (message
        # order is identical on both, so the bases always agree).
        self.pipe_claim = 0       # claimed at send issue (ordering)
        self.pipe_bytes_recv = 0
        # Per-protocol monotonic sequence counters.
        self.send_eager = 0
        self.send_rndv = 0
        self.recv_eager = 0
        self.recv_rndv = 0
        # In-flight descriptors: ("e"|"r", seq) -> (nbytes, rndv view).
        self.descriptors: dict[tuple[str, int], tuple[int, "BufView | None"]] = {}


def _trace(ctx, comm, me: int, dst: int, nbytes: int,
           proto: str) -> P.Trace:
    return P.Trace("message", {
        "src": ctx.core, "dst": comm.ranks[dst].core, "src_rank": me,
        "dst_rank": dst, "nbytes": nbytes, "proto": proto,
    })


def _send_eager(ctx, ch: Channel, view: "BufView", seq: int) -> Iterator:
    nbytes = view.length
    # Flow control: the slot must have been drained of the previous
    # eager message before we overwrite it.
    yield P.WaitFlag(ch.consumed, seq)
    ch.descriptors[("e", seq)] = (nbytes, None)
    yield P.Copy(src=view, dst=ch.slot.sub(0, nbytes))  # copy-in
    yield P.SetFlag(ch.sent, seq + 1)


def _send_rndv_post(ctx, ch: Channel, view: "BufView", seq: int) -> Iterator:
    if ctx.smsc.enabled:
        yield from ctx.world.node.xpmem.expose(view.buf)
    ch.descriptors[("r", seq)] = (view.length, view)
    # Keep the RTS flag monotonic when several nonblocking sends race.
    yield P.WaitFlag(ch.rts, seq)
    yield P.SetFlag(ch.rts, seq + 1)


def _claim_pipe(ctx, ch: Channel, nbytes: int) -> int:
    """Reserve the pipe byte range for a no-SMSC rendezvous message, in
    issue order (matches the receiver's processing order)."""
    if ctx.smsc.enabled:
        return -1
    base = ch.pipe_claim
    ch.pipe_claim += nbytes
    return base


def _send_rndv_finish(ctx, ch: Channel, view: "BufView", seq: int,
                      pipe_base: int) -> Iterator:
    """Complete a rendezvous send: with SMSC the receiver pulls the data
    itself; without it the *sender* streams fragments through the shared
    pipe (copy-in), which is exactly the CPU cost CICO pays twice."""
    if not ctx.smsc.enabled:
        yield from _cico_push(ch, view, pipe_base)
    yield P.WaitFlag(ch.fin, seq + 1)


def send(ctx: "RankCtx", comm: "Communicator", view: "BufView",
         dst: int, tag: int = 0) -> Iterator:
    """Blocking-standard-mode send (completes when the buffer is reusable)."""
    me = comm.rank_of(ctx)
    if dst == me:
        raise MPIError("self-send through the p2p layer is unsupported")
    ch = comm.channel(me, dst, tag)
    nbytes = view.length
    eager = nbytes <= EAGER_LIMIT
    yield _trace(ctx, comm, me, dst, nbytes, "eager" if eager else "rndv")
    yield P.Compute(SEND_OVERHEAD)
    if eager:
        seq = ch.send_eager
        ch.send_eager += 1
        yield from _send_eager(ctx, ch, view, seq)
    else:
        seq = ch.send_rndv
        ch.send_rndv += 1
        pipe_base = _claim_pipe(ctx, ch, nbytes)
        yield from _send_rndv_post(ctx, ch, view, seq)
        yield from _send_rndv_finish(ctx, ch, view, seq, pipe_base)


def recv(ctx: "RankCtx", comm: "Communicator", view: "BufView",
         src: int, tag: int = 0) -> Iterator:
    """Blocking receive; ``view`` must match the message size."""
    me = comm.rank_of(ctx)
    if src == me:
        raise MPIError("self-receive through the p2p layer is unsupported")
    ch = comm.channel(src, me, tag)
    yield P.Compute(MATCH_OVERHEAD)
    expected = view.length
    if expected <= EAGER_LIMIT:
        seq = ch.recv_eager
        ch.recv_eager += 1
        yield P.WaitFlag(ch.sent, seq + 1)
        nbytes, _ = ch.descriptors.pop(("e", seq))
        if nbytes > expected:
            raise MPIError(f"message truncation: {nbytes} bytes into {expected}")
        yield P.Copy(src=ch.slot.sub(0, nbytes), dst=view.sub(0, nbytes))
        yield P.SetFlag(ch.consumed, seq + 1)
        return
    seq = ch.recv_rndv
    ch.recv_rndv += 1
    yield P.WaitFlag(ch.rts, seq + 1)
    yield P.Compute(RNDV_SETUP)
    nbytes, remote = ch.descriptors.pop(("r", seq))
    assert remote is not None
    if nbytes > expected:
        raise MPIError(f"message truncation: {nbytes} bytes into {expected}")
    if ctx.smsc.enabled:
        yield from ctx.smsc.copy_from(remote, view.sub(0, nbytes))
    else:
        yield from _cico_pull(ch, view, nbytes)
    # Keep FIN monotonic across out-of-order completions: they cannot be
    # out of order, because this receiver processes rndv seqs in order.
    yield P.SetFlag(ch.fin, seq + 1)


class Request:
    """Completion handle of a nonblocking operation."""

    _count = 0

    def __init__(self, ctx: "RankCtx") -> None:
        Request._count += 1
        self.flag = Flag(f"req.{ctx.rank}.{Request._count}", ctx.core)

    def wait(self) -> Iterator:
        yield P.WaitFlag(self.flag, 1)


def isend(ctx: "RankCtx", comm: "Communicator", view: "BufView",
          dst: int, tag: int = 0) -> Request:
    """Nonblocking send: protocol progress runs concurrently (as UCX's
    progress engine provides); wait on the returned request.

    The channel sequence number is claimed *now*, so message order matches
    isend issue order even though progress overlaps.
    """
    req = Request(ctx)
    me = comm.rank_of(ctx)
    ch = comm.channel(me, dst, tag)
    nbytes = view.length
    eager = nbytes <= EAGER_LIMIT
    if eager:
        seq = ch.send_eager
        ch.send_eager += 1
        pipe_base = -1
    else:
        seq = ch.send_rndv
        ch.send_rndv += 1
        pipe_base = _claim_pipe(ctx, ch, nbytes)

    def _runner() -> Iterator:
        yield _trace(ctx, comm, me, dst, nbytes, "eager" if eager else "rndv")
        yield P.Compute(SEND_OVERHEAD)
        if eager:
            yield from _send_eager(ctx, ch, view, seq)
        else:
            yield from _send_rndv_post(ctx, ch, view, seq)
            yield from _send_rndv_finish(ctx, ch, view, seq, pipe_base)
        yield P.SetFlag(req.flag, 1)

    ctx.world.node.engine.spawn(
        _runner(), core=ctx.core, name=f"isend.{ctx.rank}->{dst}"
    )
    return req


def sendrecv(ctx: "RankCtx", comm: "Communicator", sview: "BufView", dst: int,
             rview: "BufView", src: int, tag: int = 0) -> Iterator:
    """Deadlock-free exchange: publish the outgoing message, receive, then
    complete the send — both directions progress concurrently."""
    me = comm.rank_of(ctx)
    ch_o = comm.channel(me, dst, tag)
    n_o = sview.length
    eager_o = n_o <= EAGER_LIMIT
    yield _trace(ctx, comm, me, dst, n_o, "eager" if eager_o else "rndv")
    yield P.Compute(SEND_OVERHEAD)
    if eager_o:
        seq_o = ch_o.send_eager
        ch_o.send_eager += 1
        yield from _send_eager(ctx, ch_o, sview, seq_o)
        yield from recv(ctx, comm, rview, src, tag)
    else:
        seq_o = ch_o.send_rndv
        ch_o.send_rndv += 1
        pipe_base = _claim_pipe(ctx, ch_o, n_o)
        yield from _send_rndv_post(ctx, ch_o, sview, seq_o)
        yield from recv(ctx, comm, rview, src, tag)
        yield from _send_rndv_finish(ctx, ch_o, sview, seq_o, pipe_base)


FRAG = 16 * 1024                 # staged fragment (two halves ping-ponged)
FRAG_PROTO = 400e-9              # FIFO posting/polling per fragment, per side


def _cico_push(ch: Channel, view: "BufView", base: int) -> Iterator:
    """Sender half of the no-SMSC rendezvous: stream copy-ins through the
    double-buffered pipe (sender CPU + an extra pass over the data — the
    overhead single-copy mechanisms exist to remove, SSI)."""
    nbytes = view.length
    # The pipe serves one message at a time; wait for earlier claims to
    # drain completely (issue order equals receive order).
    yield P.WaitFlag(ch.pipe_cons, base)
    done = 0
    frag = 0
    while done < nbytes:
        n = min(FRAG, nbytes - done)
        if frag >= 2:
            # Reuse a half only after the receiver drained it.
            prev_end = done - FRAG  # bytes through fragment frag-2
            yield P.WaitFlag(ch.pipe_cons, base + prev_end)
        half = ch.pipe.sub((frag % 2) * FRAG, n)
        yield P.Compute(FRAG_PROTO)
        yield P.Copy(src=view.sub(done, n), dst=half)
        done += n
        yield P.SetFlag(ch.pipe_prod, base + done)
        frag += 1


def _cico_pull(ch: Channel, view: "BufView", nbytes: int) -> Iterator:
    """Receiver half: copy-outs trailing the sender's copy-ins."""
    base = ch.pipe_bytes_recv
    ch.pipe_bytes_recv = base + nbytes
    done = 0
    frag = 0
    while done < nbytes:
        n = min(FRAG, nbytes - done)
        yield P.WaitFlag(ch.pipe_prod, base + done + n)
        half = ch.pipe.sub((frag % 2) * FRAG, n)
        yield P.Compute(FRAG_PROTO)
        yield P.Copy(src=half, dst=view.sub(done, n))
        done += n
        yield P.SetFlag(ch.pipe_cons, base + done)
        frag += 1
