"""Non-blocking collectives.

CNTK originally calls MPI_Iallreduce; the paper replaces it with the
blocking variant after verifying no performance loss (SSV-D3). This module
provides the non-blocking forms so that claim is *testable* here (see
``benchmarks/test_ablation_iallreduce.py``).

Implementation: each non-blocking collective runs as a helper task pinned
to the caller's core (its compute/copy work still serializes on that core,
exactly like an MPI progress thread sharing it). Collectives on one
communicator are chained per rank, so the operation order every component
relies on is preserved even with several operations outstanding — MPI's
ordering requirement for non-blocking collectives, enforced rather than
assumed.

Mixing rule: once a rank has issued a non-blocking collective on a
communicator, its later *blocking* collectives on that communicator are
routed through the same chain (the Communicator does this transparently),
so programs may interleave the two forms freely.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Iterator

from ..sim import primitives as P
from ..sim.syncobj import Flag

if TYPE_CHECKING:  # pragma: no cover
    from .world import Communicator, RankCtx


class CollRequest:
    """Completion handle of a non-blocking collective."""

    _ids = itertools.count()

    def __init__(self, ctx: "RankCtx", kind: str) -> None:
        self.kind = kind
        self.flag = Flag(f"icoll.{kind}.{ctx.rank}.{next(CollRequest._ids)}",
                         ctx.core)

    def wait(self) -> Iterator:
        """Block until the operation completes."""
        yield P.WaitFlag(self.flag, 1)

    def done(self) -> bool:
        """Non-consuming completion probe (MPI_Test-like, zero cost)."""
        return self.flag.value >= 1


def start(comm: "Communicator", ctx: "RankCtx", kind: str,
          op_gen) -> CollRequest:
    """Launch ``op_gen`` (a collective generator) as this rank's next
    chained operation on ``comm``; returns its request."""
    req = CollRequest(ctx, kind)
    me = comm.rank_of(ctx)
    prev = comm._nb_tail.get(me)
    comm._nb_tail[me] = req

    def runner() -> Iterator:
        if prev is not None:
            yield P.WaitFlag(prev.flag, 1)
        yield from op_gen
        yield P.SetFlag(req.flag, 1)

    comm.world.node.engine.spawn(
        runner(), core=ctx.core, name=f"i{kind}.r{me}"
    )
    return req
