"""MPI datatypes (the subset the paper's collectives exercise).

numpy is a ``[perf]`` extra, so the concrete dtype object is resolved
lazily: latency-only runs (``data_movement=False`` on the event engine)
carry ``np_dtype is None`` through the primitives and never import
numpy; anything that actually touches values gets the real dtype, or a
clear :class:`~repro.errors.ConfigError` from the buffer allocation that
needed it first.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..compat import get_numpy
from ..errors import MPIError


@dataclass(frozen=True)
class Datatype:
    name: str
    itemsize: int
    np_name: str
    _cache: list = field(default_factory=list, repr=False, compare=False)

    def count_of(self, nbytes: int) -> int:
        if nbytes % self.itemsize:
            raise MPIError(
                f"{nbytes} bytes is not a whole number of {self.name} elements"
            )
        return nbytes // self.itemsize

    @property
    def np_dtype(self):
        """The numpy dtype, or ``None`` when numpy is not installed
        (pure-latency runs never dereference it)."""
        if not self._cache:
            np = get_numpy()
            self._cache.append(
                None if np is None else np.dtype(self.np_name))
        return self._cache[0]


BYTE = Datatype("MPI_BYTE", 1, "uint8")
INT = Datatype("MPI_INT", 4, "int32")
FLOAT = Datatype("MPI_FLOAT", 4, "float32")
DOUBLE = Datatype("MPI_DOUBLE", 8, "float64")
