"""MPI datatypes (the subset the paper's collectives exercise)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import MPIError


@dataclass(frozen=True)
class Datatype:
    name: str
    itemsize: int
    np_dtype: np.dtype

    def count_of(self, nbytes: int) -> int:
        if nbytes % self.itemsize:
            raise MPIError(
                f"{nbytes} bytes is not a whole number of {self.name} elements"
            )
        return nbytes // self.itemsize


BYTE = Datatype("MPI_BYTE", 1, np.dtype(np.uint8))
INT = Datatype("MPI_INT", 4, np.dtype(np.int32))
FLOAT = Datatype("MPI_FLOAT", 4, np.dtype(np.float32))
DOUBLE = Datatype("MPI_DOUBLE", 8, np.dtype(np.float64))
