"""Simulated MPI layer.

Provides the process/communicator substrate the collectives run on:

* :class:`World` — the "MPI job": one simulated process per rank, pinned
  to a core per the selected mapping policy (``map-core`` / ``map-numa``).
* :class:`Communicator` — a group of ranks bound to one collectives
  component; collective calls are generators driven with ``yield from``
  inside rank programs.
* :mod:`repro.mpi.p2p` — eager + rendezvous point-to-point transport over
  shared memory / SMSC, used by the `tuned`-style baselines.
"""

from .datatypes import BYTE, DOUBLE, FLOAT, INT, Datatype
from .ops import MAX, MIN, PROD, SUM, ReduceOp
from .mapping import map_ranks
from .world import Communicator, RankCtx, World

__all__ = [
    "Datatype", "BYTE", "INT", "FLOAT", "DOUBLE",
    "ReduceOp", "SUM", "MAX", "MIN", "PROD",
    "map_ranks",
    "World", "RankCtx", "Communicator",
]
