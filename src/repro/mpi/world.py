"""World and Communicator: the process/collective substrate.

A :class:`World` instantiates one simulated process context per rank and
pins it to a core. A :class:`Communicator` groups ranks and binds them to a
collectives *component* (XHC or one of the baselines); rank programs drive
collectives with ``yield from comm.bcast(ctx, view, root)``.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Iterator, Sequence

from ..errors import MPIError
from ..node import Node
from ..shmem.smsc import SmscConfig, SmscEndpoint
from ..sim.engine import SimProcess
from .datatypes import BYTE, Datatype
from .mapping import map_ranks
from .nonblocking import CollRequest, start as _nb_start
from .ops import SUM, ReduceOp
from . import p2p

if True:  # typing-only imports that are also used at runtime
    from ..memory.address_space import AddressSpace, BufView


class RankCtx:
    """Per-rank execution context (address space, SMSC endpoint, core)."""

    def __init__(self, world: "World", rank: int, core: int) -> None:
        self.world = world
        self.rank = rank
        self.core = core
        self.space: AddressSpace = world.node.new_address_space(rank, core)
        self.smsc = SmscEndpoint(world.node, rank, world.smsc_config)

    def alloc(self, name: str, size: int, **kw) -> Any:
        return self.space.alloc(name, size, **kw)

    @property
    def now(self) -> float:
        """Current simulated time (valid while this rank is running)."""
        return self.world.node.engine.now

    def __repr__(self) -> str:
        return f"<rank {self.rank} on core {self.core}>"


class World:
    """One simulated MPI job on one node."""

    def __init__(
        self,
        node: Node,
        nranks: int,
        mapping: str | Sequence[int] = "core",
        smsc: SmscConfig | None = None,
    ) -> None:
        if nranks < 1:
            raise MPIError("need at least one rank")
        self.node = node
        self.smsc_config = smsc or SmscConfig()
        cores = map_ranks(node.topo, nranks, mapping)
        self.ranks = [RankCtx(self, r, cores[r]) for r in range(nranks)]

    @property
    def size(self) -> int:
        return len(self.ranks)

    def communicator(self, component, ranks: Sequence[int] | None = None
                     ) -> "Communicator":
        members = (self.ranks if ranks is None
                   else [self.ranks[r] for r in ranks])
        return Communicator(self, members, component)

    def split(self, component_factory, key: Callable[[RankCtx], Any]
              ) -> dict[Any, "Communicator"]:
        """MPI_Comm_split-style partition of the world by ``key(ctx)``.

        Returns one communicator per distinct key, each with a fresh
        component instance. Example — NUMA-local communicators::

            comms = world.split(Xhc, lambda ctx:
                                world.node.topo.numa_of_core(ctx.core).index)
        """
        groups: dict[Any, list[int]] = {}
        for rank, ctx in enumerate(self.ranks):
            groups.setdefault(key(ctx), []).append(rank)
        return {
            color: self.communicator(component_factory(), ranks)
            for color, ranks in sorted(groups.items(),
                                       key=lambda kv: str(kv[0]))
        }

    def run(self) -> float:
        return self.node.engine.run()


class Communicator:
    """A group of ranks + one collectives component."""

    def __init__(self, world: World, members: list[RankCtx], component) -> None:
        if not members:
            raise MPIError("empty communicator")
        self.world = world
        self.node = world.node
        self.ranks = members
        self.component = component
        # Per-rank scratch for components (indexed by comm-relative rank).
        self.rank_state: list[dict] = [dict() for _ in members]
        self._channels: dict[tuple[int, int, int], p2p.Channel] = {}
        # Tail of each rank's non-blocking collective chain (see
        # repro.mpi.nonblocking); blocking calls join the chain once a
        # rank has used the non-blocking forms.
        self._nb_tail: dict[int, CollRequest] = {}
        component.setup(self)

    @property
    def size(self) -> int:
        return len(self.ranks)

    def rank_of(self, ctx: RankCtx) -> int:
        for i, member in enumerate(self.ranks):
            if member is ctx:
                return i
        raise MPIError(f"{ctx!r} is not a member of this communicator")

    def core_of(self, rank: int) -> int:
        return self.ranks[rank].core

    # -- p2p ------------------------------------------------------------------

    def channel(self, src: int, dst: int, tag: int) -> p2p.Channel:
        key = (src, dst, tag)
        ch = self._channels.get(key)
        if ch is None:
            ch = p2p.Channel(self, self.ranks[src], self.ranks[dst], tag)
            self._channels[key] = ch
        return ch

    def send(self, ctx: RankCtx, view: "BufView", dst: int,
             tag: int = 0) -> Iterator:
        return p2p.send(ctx, self, view, dst, tag)

    def recv(self, ctx: RankCtx, view: "BufView", src: int,
             tag: int = 0) -> Iterator:
        return p2p.recv(ctx, self, view, src, tag)

    # -- collectives ------------------------------------------------------------

    def _observed(self, ctx: RankCtx, kind: str, gen) -> Iterator:
        """Wrap a component generator in a collective-level span when the
        node is observed; hands the generator back untouched otherwise."""
        obs = self.node.obs
        if not obs.enabled:
            return gen
        comp = getattr(self.component, "name",
                       type(self.component).__name__)
        return obs.wrap(gen, f"coll.{kind}", cat="coll", comp=comp,
                        rank=self.rank_of(ctx))

    def _chained(self, ctx: RankCtx, kind: str, gen) -> Iterator:
        """Run a blocking collective, joining the rank's non-blocking
        chain if one exists (preserves operation order per rank)."""
        gen = self._observed(ctx, kind, gen)
        me = self.rank_of(ctx)
        if me in self._nb_tail:
            req = _nb_start(self, ctx, kind, gen)
            yield from req.wait()
        else:
            yield from gen

    def bcast(self, ctx: RankCtx, view: "BufView", root: int = 0) -> Iterator:
        self._check(ctx, root)
        return self._chained(ctx, "bcast",
                             self.component.bcast(self, ctx, view, root))

    def allreduce(
        self,
        ctx: RankCtx,
        sview: "BufView",
        rview: "BufView",
        op: ReduceOp = SUM,
        dtype: Datatype = BYTE,
    ) -> Iterator:
        if sview.length != rview.length:
            raise MPIError("allreduce send/recv length mismatch")
        return self._chained(
            ctx, "allreduce",
            self.component.allreduce(self, ctx, sview, rview, op, dtype))

    def reduce(
        self,
        ctx: RankCtx,
        sview: "BufView",
        rview: "BufView | None",
        op: ReduceOp = SUM,
        dtype: Datatype = BYTE,
        root: int = 0,
    ) -> Iterator:
        self._check(ctx, root)
        return self._chained(
            ctx, "reduce",
            self.component.reduce(self, ctx, sview, rview, op, dtype, root))

    def barrier(self, ctx: RankCtx) -> Iterator:
        return self._chained(ctx, "barrier",
                             self.component.barrier(self, ctx))

    def gather(self, ctx: RankCtx, sview: "BufView",
               rview: "BufView | None", root: int = 0) -> Iterator:
        """Gather equal blocks to ``root`` (``rview`` is the root's
        size*block receive buffer; None elsewhere)."""
        self._check(ctx, root)
        if rview is not None and rview.length != sview.length * self.size:
            raise MPIError("gather receive buffer must hold size*block")
        return self._chained(
            ctx, "gather",
            self.component.gather(self, ctx, sview, rview, root))

    def scatter(self, ctx: RankCtx, sview: "BufView | None",
                rview: "BufView", root: int = 0) -> Iterator:
        """Scatter equal blocks from ``root`` (``sview`` is the root's
        size*block send buffer; None elsewhere)."""
        self._check(ctx, root)
        if sview is not None and sview.length != rview.length * self.size:
            raise MPIError("scatter send buffer must hold size*block")
        return self._chained(
            ctx, "scatter",
            self.component.scatter(self, ctx, sview, rview, root))

    def allgather(self, ctx: RankCtx, sview: "BufView",
                  rview: "BufView") -> Iterator:
        if rview.length != sview.length * self.size:
            raise MPIError("allgather receive buffer must hold size*block")
        return self._chained(
            ctx, "allgather",
            self.component.allgather(self, ctx, sview, rview))

    def alltoall(self, ctx: RankCtx, sview: "BufView",
                 rview: "BufView") -> Iterator:
        """Personalized exchange of equal blocks (size*block buffers)."""
        if sview.length != rview.length:
            raise MPIError("alltoall buffers must match")
        if sview.length % self.size:
            raise MPIError("alltoall buffer must hold size equal blocks")
        return self._chained(
            ctx, "alltoall",
            self.component.alltoall(self, ctx, sview, rview))

    def reduce_scatter_block(
        self,
        ctx: RankCtx,
        sview: "BufView",
        rview: "BufView",
        op: ReduceOp = SUM,
        dtype: Datatype = BYTE,
    ) -> Iterator:
        """Reduce size*block elements, scatter one block per rank."""
        if sview.length != rview.length * self.size:
            raise MPIError("reduce_scatter send buffer must hold size*block")
        return self._chained(
            ctx, "reduce_scatter",
            self.component.reduce_scatter_block(self, ctx, sview, rview,
                                                op, dtype))

    # -- non-blocking collectives (MPI_I*) ---------------------------------

    def ibcast(self, ctx: RankCtx, view: "BufView",
               root: int = 0) -> CollRequest:
        self._check(ctx, root)
        return _nb_start(self, ctx, "bcast", self._observed(
            ctx, "bcast", self.component.bcast(self, ctx, view, root)))

    def iallreduce(
        self,
        ctx: RankCtx,
        sview: "BufView",
        rview: "BufView",
        op: ReduceOp = SUM,
        dtype: Datatype = BYTE,
    ) -> CollRequest:
        if sview.length != rview.length:
            raise MPIError("allreduce send/recv length mismatch")
        return _nb_start(self, ctx, "allreduce", self._observed(
            ctx, "allreduce",
            self.component.allreduce(self, ctx, sview, rview, op, dtype)))

    def ireduce(
        self,
        ctx: RankCtx,
        sview: "BufView",
        rview: "BufView | None",
        op: ReduceOp = SUM,
        dtype: Datatype = BYTE,
        root: int = 0,
    ) -> CollRequest:
        self._check(ctx, root)
        return _nb_start(self, ctx, "reduce", self._observed(
            ctx, "reduce",
            self.component.reduce(self, ctx, sview, rview, op, dtype, root)))

    def ibarrier(self, ctx: RankCtx) -> CollRequest:
        return _nb_start(self, ctx, "barrier", self._observed(
            ctx, "barrier", self.component.barrier(self, ctx)))

    def _check(self, ctx: RankCtx, root: int) -> None:
        if not 0 <= root < self.size:
            raise MPIError(f"root {root} out of range for size {self.size}")

    # -- running programs ----------------------------------------------------

    def launch(self, program: Callable[["Communicator", RankCtx], Generator]
               ) -> list[SimProcess]:
        """Spawn ``program(comm, ctx)`` for every member rank."""
        procs = []
        for ctx in self.ranks:
            procs.append(
                self.world.node.engine.spawn(
                    program(self, ctx), core=ctx.core,
                    name=f"rank{self.rank_of(ctx)}",
                )
            )
        return procs

    def run(self, program: Callable[["Communicator", RankCtx], Generator]
            ) -> list[SimProcess]:
        """Launch + run to completion; returns the rank processes."""
        procs = self.launch(program)
        self.world.run()
        return procs
