"""XHC behind a tuned decision table (``xhc-tuned``).

Where :class:`repro.xhc.Xhc` runs one fixed configuration, this component
loads a :class:`repro.tune.table.DecisionTable` (the artifact
``python -m repro tune`` produces) and dispatches every operation to the
best configuration for its (machine, collective, message size) — the same
shape as OpenMPI's ``tuned`` decision rules, but with entries *derived*
for this machine instead of hard-coded.

Each distinct configuration gets its own lazily-created :class:`Xhc`
delegate bound to the same communicator; dispatch is a pure function of
the table and the operation, so every rank independently picks the same
delegate and the collective stays matched.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from ...errors import ConfigError
from ...xhc.config import XhcConfig
from .base import CollComponent

if TYPE_CHECKING:  # repro.xhc imports colls.base; keep runtime import lazy
    from ...xhc import Xhc

# Collectives the tuner does not sweep borrow the nearest swept shape:
# rooted reductions follow allreduce, the remaining fan-in/fan-out
# patterns follow bcast (barrier is a zero-byte fan-in + fan-out).
ALIASES = {
    "reduce": "allreduce",
    "reduce_scatter": "allreduce",
    "barrier": "bcast",
    "gather": "bcast",
    "scatter": "bcast",
    "allgather": "bcast",
    "alltoall": "bcast",
}


class TunedXhc(CollComponent):
    name = "xhc-tuned"

    def __init__(self, table=None, path: str | None = None,
                 fallback: XhcConfig | None = None) -> None:
        """``table`` (a DecisionTable) wins over ``path`` (a JSON file);
        with neither, the default committed table is loaded when present.
        ``fallback`` serves sizes/collectives the table does not cover
        (default: the paper's hand-tuned configuration)."""
        super().__init__()
        from ...tune.table import DecisionTable, default_table_path
        if table is None:
            if path is None:
                path = default_table_path()
            table = (DecisionTable.load(path) if path is not None
                     else DecisionTable())
        self.table = table
        self.fallback = fallback if fallback is not None else XhcConfig()
        self._delegates: dict[XhcConfig, "Xhc"] = {}

    def _setup(self, comm) -> None:
        self._system = comm.node.topo.name.lower()

    def config_for(self, collective: str, size: int) -> XhcConfig:
        cfg = self.table.lookup(self._system, collective, size)
        if cfg is None and collective in ALIASES:
            cfg = self.table.lookup(self._system, ALIASES[collective], size)
        return cfg if cfg is not None else self.fallback

    def _delegate(self, comm, collective: str, size: int) -> "Xhc":
        from ...xhc import Xhc
        cfg = self.config_for(collective, size)
        inner = self._delegates.get(cfg)
        if inner is None:
            try:
                inner = Xhc(config=cfg)
                inner.setup(comm)
            except ConfigError:
                # A per-level chunk tuple tuned at a different rank count
                # can mismatch this communicator's hierarchy depth. The
                # failure is a pure function of (config, communicator), so
                # every rank degrades to the fallback in lockstep.
                inner = self._delegates.get(self.fallback)
                if inner is None:
                    inner = Xhc(config=self.fallback)
                    inner.setup(comm)
                    self._delegates[self.fallback] = inner
            self._delegates[cfg] = inner
        return inner

    # -- dispatch ----------------------------------------------------------

    def bcast(self, comm, ctx, view, root) -> Iterator:
        return self._delegate(comm, "bcast", view.length) \
            .bcast(comm, ctx, view, root)

    def allreduce(self, comm, ctx, sview, rview, op, dtype) -> Iterator:
        return self._delegate(comm, "allreduce", sview.length) \
            .allreduce(comm, ctx, sview, rview, op, dtype)

    def reduce(self, comm, ctx, sview, rview, op, dtype, root) -> Iterator:
        return self._delegate(comm, "reduce", sview.length) \
            .reduce(comm, ctx, sview, rview, op, dtype, root)

    def barrier(self, comm, ctx) -> Iterator:
        # Barriers carry no payload: treat as the smallest message class.
        return self._delegate(comm, "barrier", 1).barrier(comm, ctx)

    def gather(self, comm, ctx, sview, rview, root) -> Iterator:
        return self._delegate(comm, "gather", sview.length) \
            .gather(comm, ctx, sview, rview, root)

    def scatter(self, comm, ctx, sview, rview, root) -> Iterator:
        return self._delegate(comm, "scatter", rview.length) \
            .scatter(comm, ctx, sview, rview, root)

    def allgather(self, comm, ctx, sview, rview) -> Iterator:
        return self._delegate(comm, "allgather", sview.length) \
            .allgather(comm, ctx, sview, rview)

    def alltoall(self, comm, ctx, sview, rview) -> Iterator:
        return self._delegate(comm, "alltoall",
                              sview.length // max(1, comm.size)) \
            .alltoall(comm, ctx, sview, rview)

    def reduce_scatter_block(self, comm, ctx, sview, rview, op,
                             dtype) -> Iterator:
        return self._delegate(comm, "reduce_scatter", rview.length) \
            .reduce_scatter_block(comm, ctx, sview, rview, op, dtype)
