"""`sm` — OpenMPI's shared-memory collectives component.

Characteristics modeled (SSV-D1, Fig. 4):

* copy-in-copy-out through per-communicator shared slots for *all* sizes,
  fragmented through a fixed window (8 KiB), with a full completion
  handshake per fragment (no deep pipelining);
* **atomic fetch-add** for the fan-in control flag — the design decision
  whose contention collapse on dense nodes (ARM-N1) the paper demonstrates;
* a flat (root-centric) communication structure.
"""

from __future__ import annotations

from typing import Iterator

from ...shmem.segment import SharedSegment
from ...sim import primitives as P
from ...sim.syncobj import Atomic, Flag
from .base import CollComponent, chunks

FRAGMENT = 8 * 1024


class SmColl(CollComponent):
    name = "sm"

    def __init__(self, fragment: int = FRAGMENT) -> None:
        super().__init__()
        self.fragment = fragment

    def _setup(self, comm) -> None:
        self.slots = []          # per-rank data slot (contributions)
        self.result_slots = []   # per-rank slot for fan-out data
        self.seq = []            # per-rank single-writer fragment counter
        self.posted = []         # per-rank single-writer post counter
        self.done = []           # per-rank atomic consumed-fragment counter
        for ctx in comm.ranks:
            seg = SharedSegment(ctx.space, f"sm.{ctx.rank}", 2 * self.fragment)
            self.slots.append(seg.reserve("in", self.fragment))
            self.result_slots.append(seg.reserve("out", self.fragment))
            self.seq.append(Flag(f"sm.seq.{ctx.rank}", ctx.core))
            self.posted.append(Flag(f"sm.posted.{ctx.rank}", ctx.core))
            self.done.append(Atomic(f"sm.done.{ctx.rank}", ctx.core))
        self.bar_arrive = Atomic("sm.bar.arrive", comm.ranks[0].core)
        self.bar_release = Flag("sm.bar.release", comm.ranks[0].core)

    def _state(self, comm, me) -> dict:
        st = comm.rank_state[me]
        if not st:
            n = comm.size
            st.update(seq=[0] * n, posted=[0] * n, done=[0] * n, ops=0)
        return st

    # -- broadcast --------------------------------------------------------

    def bcast(self, comm, ctx, view, root) -> Iterator:
        size = comm.size
        if size == 1:
            return
        if view.length == 0:
            return
        me = comm.rank_of(ctx)
        st = self._state(comm, me)
        nfrag = -(-view.length // self.fragment)
        seq_base, done_base = st["seq"][root], st["done"][root]
        st["seq"][root] += nfrag
        st["done"][root] += nfrag * (size - 1)
        if me != root:
            yield P.Trace("message", {
                "src": comm.core_of(root), "dst": ctx.core,
                "src_rank": root, "dst_rank": me,
                "nbytes": view.length, "proto": "sm",
            })
        frag_i = 0
        for off, n in chunks(view.length, self.fragment):
            if me == root:
                # Reuse the slot only after everyone consumed the previous
                # fragment (the window handshake).
                if frag_i > 0:
                    yield P.WaitAtomic(self.done[root],
                                       done_base + frag_i * (size - 1))
                yield P.Copy(src=view.sub(off, n),
                             dst=self.result_slots[root].sub(0, n))
                yield P.SetFlag(self.seq[root], seq_base + frag_i + 1)
            else:
                yield P.WaitFlag(self.seq[root], seq_base + frag_i + 1)
                yield P.Copy(src=self.result_slots[root].sub(0, n),
                             dst=view.sub(off, n))
                yield P.AtomicRMW(self.done[root], 1)
            frag_i += 1
        if me == root:
            yield P.WaitAtomic(self.done[root], done_base + nfrag * (size - 1))

    # -- allreduce ---------------------------------------------------------

    def allreduce(self, comm, ctx, sview, rview, op, dtype) -> Iterator:
        yield from self._reduce_impl(comm, ctx, sview, rview, op, dtype,
                                     root=0, fan_out=True)

    def reduce(self, comm, ctx, sview, rview, op, dtype, root) -> Iterator:
        yield from self._reduce_impl(comm, ctx, sview, rview, op, dtype,
                                     root=root, fan_out=False)

    def _reduce_impl(self, comm, ctx, sview, rview, op, dtype, root,
                     fan_out) -> Iterator:
        size = comm.size
        me = comm.rank_of(ctx)
        if size == 1:
            if rview is not None:
                yield P.Copy(src=sview, dst=rview)
            return
        st = self._state(comm, me)
        nbytes = sview.length
        nfrag = -(-nbytes // self.fragment)
        posted_base = list(st["posted"])
        seq_base, done_base = st["seq"][root], st["done"][root]
        for q in range(size):
            if q != root:
                st["posted"][q] += nfrag
        st["seq"][root] += nfrag
        st["done"][root] += nfrag * (size - 1)
        frag_i = 0
        for off, n in chunks(nbytes, self.fragment):
            piece_in = self.slots[me].sub(0, n)
            if me == root:
                # Contribute our own fragment, then reduce everyone's.
                yield P.Copy(src=sview.sub(off, n), dst=piece_in)
                srcs = []
                for r in range(size):
                    if r == root:
                        continue
                    yield P.WaitFlag(self.posted[r],
                                     posted_base[r] + frag_i + 1)
                    srcs.append(self.slots[r].sub(0, n))
                dst = (rview if rview is not None else sview).sub(off, n)
                yield P.Reduce(srcs=tuple(srcs + [piece_in]), dst=dst,
                               op=op.ufunc, dtype=dtype.np_dtype)
                if fan_out:
                    if frag_i > 0:
                        yield P.WaitAtomic(self.done[root],
                                           done_base + frag_i * (size - 1))
                    yield P.Copy(src=dst, dst=self.result_slots[root].sub(0, n))
                    yield P.SetFlag(self.seq[root], seq_base + frag_i + 1)
                else:
                    yield P.SetFlag(self.seq[root], seq_base + frag_i + 1)
            else:
                yield P.Copy(src=sview.sub(off, n), dst=piece_in)
                yield P.SetFlag(self.posted[me],
                                posted_base[me] + frag_i + 1)
                yield P.WaitFlag(self.seq[root], seq_base + frag_i + 1)
                if fan_out:
                    yield P.Copy(src=self.result_slots[root].sub(0, n),
                                 dst=rview.sub(off, n))
                yield P.AtomicRMW(self.done[root], 1)
            frag_i += 1
        if me == root:
            yield P.WaitAtomic(self.done[root], done_base + nfrag * (size - 1))

    # -- barrier -----------------------------------------------------------

    def barrier(self, comm, ctx) -> Iterator:
        size = comm.size
        if size == 1:
            return
        me = comm.rank_of(ctx)
        st = self._state(comm, me)
        st["ops"] += 1
        episode = st["ops"]
        if me == 0:
            yield P.WaitAtomic(self.bar_arrive, episode * (size - 1))
            yield P.SetFlag(self.bar_release, episode)
        else:
            yield P.AtomicRMW(self.bar_arrive, 1)
            yield P.WaitFlag(self.bar_release, episode)
