"""`tuned` — OpenMPI's default collectives over point-to-point messages.

Algorithms and decision thresholds follow OpenMPI's coll/tuned fixed rules
(simplified): trees and rings are laid out over *rank ids*, so the
communication pattern is static and topology-unaware — the property the
paper's Fig. 9 / Table II experiments expose.

Broadcast:
  * <= 2 KiB             binomial tree
  * <= 128 KiB           segmented binomial tree (32 KiB segments)
  * larger               chain pipeline (128 KiB segments)
Allreduce:
  * <= 8 KiB             recursive doubling
  * larger               ring reduce-scatter + ring allgather
Reduce: binomial tree with per-child accumulate.
Barrier: recursive doubling of empty tokens (4-byte payloads).
"""

from __future__ import annotations

from typing import Iterator

from ...sim import primitives as P
from .. import p2p
from .base import CollComponent, binomial_tree, chain_next, chunks

def _binomial_span(rel: int, size: int) -> int:
    """Number of relative ranks in ``rel``'s binomial subtree (they are
    contiguous: [rel, rel+span))."""
    if rel == 0:
        return size
    low = rel & -rel
    return min(low, size - rel)


BCAST_BINOMIAL_MAX = 2 * 1024
BCAST_SEGMENTED_MAX = 128 * 1024
BCAST_SEGMENT = 32 * 1024
BCAST_PIPELINE_SEGMENT = 128 * 1024
ALLREDUCE_RD_MAX = 8 * 1024


class Tuned(CollComponent):
    name = "tuned"

    def __init__(self) -> None:
        super().__init__()
        self._tmp = {}  # rank -> scratch buffers

    def _scratch(self, ctx, size: int):
        """Per-rank reduction scratch, grown on demand."""
        buf = self._tmp.get(ctx.rank)
        if buf is None or buf.size < size:
            buf = ctx.alloc(f"tuned.scratch.{size}", size)
            self._tmp[ctx.rank] = buf
        return buf

    # -- broadcast --------------------------------------------------------

    def bcast(self, comm, ctx, view, root) -> Iterator:
        size = comm.size
        if size == 1:
            return
        me = comm.rank_of(ctx)
        nbytes = view.length
        if nbytes <= BCAST_BINOMIAL_MAX:
            yield from self._bcast_binomial(comm, ctx, me, view, root, nbytes)
        elif nbytes <= BCAST_SEGMENTED_MAX:
            yield from self._bcast_segmented(comm, ctx, me, view, root,
                                             BCAST_SEGMENT)
        else:
            yield from self._bcast_chain(comm, ctx, me, view, root,
                                         BCAST_PIPELINE_SEGMENT)

    def _bcast_binomial(self, comm, ctx, me, view, root, nbytes) -> Iterator:
        parent, children = binomial_tree(me, comm.size, root)
        if parent is not None:
            yield from comm.recv(ctx, view, parent, tag=1)
        for child in children:
            yield from comm.send(ctx, view, child, tag=1)

    def _bcast_segmented(self, comm, ctx, me, view, root, seg) -> Iterator:
        parent, children = binomial_tree(me, comm.size, root)
        reqs: list[p2p.Request] = []
        for off, n in chunks(view.length, seg):
            piece = view.sub(off, n)
            if parent is not None:
                yield from comm.recv(ctx, piece, parent, tag=2)
            for child in children:
                reqs.append(p2p.isend(ctx, comm, piece, child, tag=2))
        for req in reqs:
            yield from req.wait()

    def _bcast_chain(self, comm, ctx, me, view, root, seg) -> Iterator:
        prev, nxt = chain_next(me, comm.size, root)
        reqs: list[p2p.Request] = []
        for off, n in chunks(view.length, seg):
            piece = view.sub(off, n)
            if prev is not None:
                yield from comm.recv(ctx, piece, prev, tag=3)
            if nxt is not None:
                reqs.append(p2p.isend(ctx, comm, piece, nxt, tag=3))
        for req in reqs:
            yield from req.wait()

    # -- allreduce ---------------------------------------------------------

    def allreduce(self, comm, ctx, sview, rview, op, dtype) -> Iterator:
        size = comm.size
        nbytes = sview.length
        if size == 1:
            yield P.Copy(src=sview, dst=rview)
            return
        if nbytes <= ALLREDUCE_RD_MAX:
            yield from self._allreduce_rd(comm, ctx, sview, rview, op, dtype)
        else:
            yield from self._allreduce_ring(comm, ctx, sview, rview, op, dtype)

    def _allreduce_rd(self, comm, ctx, sview, rview, op, dtype) -> Iterator:
        """Recursive doubling with the standard non-power-of-two fold."""
        size = comm.size
        me = comm.rank_of(ctx)
        nbytes = sview.length
        yield P.Copy(src=sview, dst=rview)
        tmp = self._scratch(ctx, nbytes).view(0, nbytes)

        pof2 = 1
        while pof2 * 2 <= size:
            pof2 *= 2
        rem = size - pof2

        # Pre-phase: the first 2*rem ranks fold odd ones into even ones.
        if me < 2 * rem:
            if me % 2:  # odd: contribute and sit out
                yield from comm.send(ctx, rview, me - 1, tag=4)
                newrank = -1
            else:
                yield from comm.recv(ctx, tmp, me + 1, tag=4)
                yield P.Reduce(srcs=(tmp,), dst=rview, op=op.ufunc,
                               dtype=dtype.np_dtype, accumulate=True)
                newrank = me // 2
        else:
            newrank = me - rem

        if newrank != -1:
            mask = 1
            while mask < pof2:
                peer_new = newrank ^ mask
                peer = (peer_new * 2 if peer_new < rem else peer_new + rem)
                yield from p2p.sendrecv(ctx, comm, rview, peer, tmp, peer,
                                        tag=5)
                yield P.Reduce(srcs=(tmp,), dst=rview, op=op.ufunc,
                               dtype=dtype.np_dtype, accumulate=True)
                mask <<= 1

        # Post-phase: hand the result back to the folded odd ranks.
        if me < 2 * rem:
            if me % 2:
                yield from comm.recv(ctx, rview, me - 1, tag=6)
            else:
                yield from comm.send(ctx, rview, me + 1, tag=6)

    def _allreduce_ring(self, comm, ctx, sview, rview, op, dtype) -> Iterator:
        """Ring reduce-scatter followed by ring allgather (bandwidth-optimal
        in a flat cost model; hops straddle sockets on rank-ordered rings)."""
        size = comm.size
        me = comm.rank_of(ctx)
        nbytes = sview.length
        # Element-aligned slice boundaries.
        elems = nbytes // dtype.itemsize
        base = elems // size
        extra = elems % size
        bounds = [0]
        for i in range(size):
            bounds.append(bounds[-1] + (base + (1 if i < extra else 0))
                          * dtype.itemsize)

        def slice_view(buf_view, idx):
            lo, hi = bounds[idx], bounds[idx + 1]
            return buf_view.sub(lo, hi - lo)

        if base == 0:
            # Fewer elements than ranks: ring slices degenerate; use
            # recursive doubling instead (OpenMPI does the same).
            yield from self._allreduce_rd(comm, ctx, sview, rview, op, dtype)
            return
        yield P.Copy(src=sview, dst=rview)
        tmp_buf = self._scratch(ctx, nbytes)
        nxt = (me + 1) % size
        prv = (me - 1) % size
        # Reduce-scatter: after step s, rank owns slice (me - s - 1).
        for s in range(size - 1):
            send_idx = (me - s) % size
            recv_idx = (me - s - 1) % size
            recv_tmp = tmp_buf.view(bounds[recv_idx],
                                    bounds[recv_idx + 1] - bounds[recv_idx])
            yield from p2p.sendrecv(ctx, comm, slice_view(rview, send_idx),
                                    nxt, recv_tmp, prv, tag=7)
            yield P.Reduce(srcs=(recv_tmp,), dst=slice_view(rview, recv_idx),
                           op=op.ufunc, dtype=dtype.np_dtype, accumulate=True)
        # Allgather: circulate the finished slices.
        for s in range(size - 1):
            send_idx = (me - s + 1) % size
            recv_idx = (me - s) % size
            yield from p2p.sendrecv(ctx, comm, slice_view(rview, send_idx),
                                    nxt, slice_view(rview, recv_idx), prv,
                                    tag=8)

    # -- reduce -----------------------------------------------------------

    def reduce(self, comm, ctx, sview, rview, op, dtype, root) -> Iterator:
        size = comm.size
        me = comm.rank_of(ctx)
        nbytes = sview.length
        acc = rview if me == root and rview is not None else \
            self._scratch(ctx, 2 * nbytes).view(0, nbytes)
        yield P.Copy(src=sview, dst=acc)
        if size == 1:
            return
        tmp = self._scratch(ctx, 2 * nbytes).view(nbytes, nbytes)
        parent, children = binomial_tree(me, size, root)
        for child in children:
            yield from comm.recv(ctx, tmp, child, tag=9)
            yield P.Reduce(srcs=(tmp,), dst=acc, op=op.ufunc,
                           dtype=dtype.np_dtype, accumulate=True)
        if parent is not None:
            yield from comm.send(ctx, acc, parent, tag=9)

    # -- gather / scatter / allgather ---------------------------------------

    def gather(self, comm, ctx, sview, rview, root) -> Iterator:
        """Binomial-tree gather: each rank forwards its subtree's blocks
        (contiguous in relative-rank order) to its parent."""
        size = comm.size
        me = comm.rank_of(ctx)
        block = sview.length
        if size == 1:
            if rview is not None:
                yield P.Copy(src=sview, dst=rview)
            return
        rel = (me - root) % size
        span = _binomial_span(rel, size)
        if me == root and rview is not None and root == 0:
            stage = rview  # relative order == rank order for root 0
        else:
            stage = self._scratch(ctx, span * block).view(0, span * block)
        yield P.Copy(src=sview, dst=stage.sub(0, block))
        parent, children = binomial_tree(me, size, root)
        # Receive children deepest-first so their subtrees are complete.
        for child in children:
            crel = (child - root) % size
            cspan = _binomial_span(crel, size)
            dst = stage.sub((crel - rel) * block, cspan * block)
            yield from comm.recv(ctx, dst, child, tag=11)
        if parent is not None:
            yield from comm.send(ctx, stage, parent, tag=11)
        elif rview is not None and root != 0:
            # stage holds blocks in relative order; rotate into rank order.
            for r in range(size):
                rel_r = (r - root) % size
                yield P.Copy(src=stage.sub(rel_r * block, block),
                             dst=rview.sub(r * block, block))

    def scatter(self, comm, ctx, sview, rview, root) -> Iterator:
        """Binomial-tree scatter (the gather, reversed)."""
        size = comm.size
        me = comm.rank_of(ctx)
        block = rview.length
        if size == 1:
            if sview is not None:
                yield P.Copy(src=sview, dst=rview)
            return
        rel = (me - root) % size
        span = _binomial_span(rel, size)
        if me == root:
            stage = self._scratch(ctx, size * block).view(0, size * block)
            # Lay the blocks out in relative-rank order once.
            for r in range(size):
                rel_r = (r - root) % size
                yield P.Copy(src=sview.sub(r * block, block),
                             dst=stage.sub(rel_r * block, block))
        else:
            buf = self._scratch(ctx, span * block)
            stage = buf.view(0, span * block)
            parent, _ = binomial_tree(me, size, root)
            yield from comm.recv(ctx, stage, parent, tag=12)
        _, children = binomial_tree(me, size, root)
        for child in children:
            crel = (child - root) % size
            cspan = _binomial_span(crel, size)
            piece = stage.sub((crel - rel) * block, cspan * block)
            yield from comm.send(ctx, piece, child, tag=12)
        yield P.Copy(src=stage.sub(0, block), dst=rview)

    def allgather(self, comm, ctx, sview, rview) -> Iterator:
        """Ring allgather: size-1 neighbour exchanges of one block each."""
        size = comm.size
        me = comm.rank_of(ctx)
        block = sview.length
        yield P.Copy(src=sview, dst=rview.sub(me * block, block))
        if size == 1:
            return
        nxt = (me + 1) % size
        prv = (me - 1) % size
        for s in range(size - 1):
            send_idx = (me - s) % size
            recv_idx = (me - s - 1) % size
            yield from p2p.sendrecv(
                ctx, comm, rview.sub(send_idx * block, block), nxt,
                rview.sub(recv_idx * block, block), prv, tag=13)

    def alltoall(self, comm, ctx, sview, rview) -> Iterator:
        """Pairwise-exchange alltoall: size-1 rounds, partner = me ^ ... or
        the (me + round) rotation for non-power-of-two sizes."""
        size = comm.size
        me = comm.rank_of(ctx)
        block = sview.length // size
        yield P.Copy(src=sview.sub(me * block, block),
                     dst=rview.sub(me * block, block))
        for rnd in range(1, size):
            dst = (me + rnd) % size
            src = (me - rnd) % size
            yield from p2p.sendrecv(
                ctx, comm, sview.sub(dst * block, block), dst,
                rview.sub(src * block, block), src, tag=14)

    def reduce_scatter_block(self, comm, ctx, sview, rview, op,
                             dtype) -> Iterator:
        """Ring reduce-scatter (the first phase of the ring allreduce)."""
        size = comm.size
        me = comm.rank_of(ctx)
        block = rview.length
        if size == 1:
            yield P.Copy(src=sview, dst=rview)
            return
        work = self._scratch(ctx, (size + 1) * block)
        acc = work.view(0, size * block)
        tmp = work.view(size * block, block)
        yield P.Copy(src=sview, dst=acc)
        nxt = (me + 1) % size
        prv = (me - 1) % size
        # Rotation chosen so each rank finishes holding its *own* block.
        for s in range(size - 1):
            send_idx = (me - s - 1) % size
            recv_idx = (me - s - 2) % size
            yield from p2p.sendrecv(
                ctx, comm, acc.sub(send_idx * block, block), nxt,
                tmp, prv, tag=15)
            yield P.Reduce(srcs=(tmp,), dst=acc.sub(recv_idx * block, block),
                           op=op.ufunc, dtype=dtype.np_dtype,
                           accumulate=True)
        yield P.Copy(src=acc.sub(me * block, block), dst=rview)

    # -- barrier -----------------------------------------------------------

    def barrier(self, comm, ctx) -> Iterator:
        size = comm.size
        if size == 1:
            return
        me = comm.rank_of(ctx)
        token = self._scratch(ctx, 8).view(0, 4)
        rtoken = self._scratch(ctx, 8).view(4, 4)
        # Dissemination barrier over p2p tokens.
        step = 1
        while step < size:
            dst = (me + step) % size
            src = (me - step) % size
            yield from p2p.sendrecv(ctx, comm, token, dst, rtoken, src,
                                    tag=10)
            step <<= 1
