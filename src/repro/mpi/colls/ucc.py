"""`ucc` — the Unified Collective Communication library (host TLs).

Modeled characteristics: efficient single-writer synchronization and XPMEM
single-copy transfers (like XHC), but **static, topology-unaware schedules**
laid out over rank ids (SSV-D1): knomial trees for small messages and
trees/rings for large ones. This makes ucc competitive in raw transport
(the paper finds it matches XHC at 128K-1M allreduce) while losing where
locality and congestion management matter.
"""

from __future__ import annotations

from typing import Iterator

from ...shmem.segment import SharedSegment
from ...sim import primitives as P
from ...sim.syncobj import Flag
from .base import CollComponent, knomial_tree

SMALL_MAX = 4 * 1024
CHUNK = 64 * 1024
RADIX = 4


class Ucc(CollComponent):
    name = "ucc"

    def __init__(self, radix: int = RADIX, small_max: int = SMALL_MAX,
                 chunk: int = CHUNK) -> None:
        super().__init__()
        self.radix = radix
        self.small_max = small_max
        self.chunk = chunk

    def _setup(self, comm) -> None:
        n = comm.size
        self.slot = []      # cico staging, one per rank
        self.prod = []      # reduce/bcast-stage production counters
        self.bprod = []     # fan-out stage production counters
        self.step = []      # ring reduce-scatter step counters
        self.rsdone = []    # owned-slice completion counters
        self.ack = []       # per-op completion counters
        for ctx in comm.ranks:
            seg = SharedSegment(ctx.space, f"ucc.{ctx.rank}", self.small_max)
            self.slot.append(seg.reserve("slot", self.small_max))
            self.prod.append(Flag(f"ucc.prod.{ctx.rank}", ctx.core))
            self.bprod.append(Flag(f"ucc.bprod.{ctx.rank}", ctx.core))
            self.step.append(Flag(f"ucc.step.{ctx.rank}", ctx.core))
            self.rsdone.append(Flag(f"ucc.rsdone.{ctx.rank}", ctx.core))
            self.ack.append(Flag(f"ucc.ack.{ctx.rank}", ctx.core))
        # Published user-buffer views, overwritten per op (safe: acks
        # guarantee all readers finished before the next op republishes).
        self._views: dict[int, object] = {}
        self._scratch: dict[int, object] = {}

    def _ledger(self, comm, me) -> dict:
        st = comm.rank_state[me]
        if not st:
            st["prod"] = [0] * comm.size
            st["bprod"] = [0] * comm.size
            st["step"] = [0] * comm.size
            st["rsdone"] = [0] * comm.size
            st["ack"] = [0] * comm.size
        return st

    def _scratch_view(self, ctx, size: int):
        buf = self._scratch.get(ctx.rank)
        if buf is None or buf.size < size:
            buf = ctx.alloc(f"ucc.scratch.{size}", size)
            self._scratch[ctx.rank] = buf
        return buf.view(0, size)

    def _finish(self, comm, ctx, me, root, children, led) -> Iterator:
        """Common finalization: collect children's acks, post our own."""
        for child in children:
            yield P.WaitFlag(self.ack[child], led["ack"][child] + 1)
        if me != root:
            yield P.SetFlag(self.ack[me], led["ack"][me] + 1)
        for q in range(comm.size):
            if q != root:
                led["ack"][q] += 1

    # -- broadcast --------------------------------------------------------

    def bcast(self, comm, ctx, view, root) -> Iterator:
        size = comm.size
        if size == 1 or view.length == 0:
            return
        me = comm.rank_of(ctx)
        led = self._ledger(comm, me)
        parent, children = knomial_tree(me, size, root, self.radix)
        nbytes = view.length
        if parent is not None:
            yield P.Trace("message", {
                "src": comm.core_of(parent), "dst": ctx.core,
                "src_rank": parent, "dst_rank": me,
                "nbytes": nbytes, "proto": "ucc",
            })
        if nbytes <= self.small_max:
            yield from self._bcast_small(comm, ctx, me, view, parent,
                                         children, led, nbytes)
        else:
            yield from self._bcast_large(comm, ctx, me, view, parent,
                                         children, led, nbytes)
        yield from self._finish(comm, ctx, me, root, children, led)
        # Ledger: every rank with children produced one unit / S bytes.
        incr = 1 if nbytes <= self.small_max else nbytes
        for q in range(size):
            _, ch = knomial_tree(q, size, root, self.radix)
            if ch or q == root:
                led["bprod"][q] += incr

    def _bcast_small(self, comm, ctx, me, view, parent, children, led,
                     nbytes) -> Iterator:
        if parent is None:
            yield P.Copy(src=view, dst=self.slot[me].sub(0, nbytes))
            yield P.SetFlag(self.bprod[me], led["bprod"][me] + 1)
        else:
            yield P.WaitFlag(self.bprod[parent], led["bprod"][parent] + 1)
            src = self.slot[parent].sub(0, nbytes)
            if children:
                yield P.Copy(src=src, dst=self.slot[me].sub(0, nbytes))
                yield P.SetFlag(self.bprod[me], led["bprod"][me] + 1)
                yield P.Copy(src=self.slot[me].sub(0, nbytes),
                             dst=view.sub(0, nbytes))
            else:
                yield P.Copy(src=src, dst=view.sub(0, nbytes))

    def _bcast_large(self, comm, ctx, me, view, parent, children, led,
                     nbytes) -> Iterator:
        self._views[me] = view
        if parent is None or children:
            yield from comm.node.xpmem.expose(view.buf)
        if parent is None:
            yield P.SetFlag(self.bprod[me], led["bprod"][me] + nbytes)
            return
        base_p = led["bprod"][parent]
        base_m = led["bprod"][me]
        got = 0
        while got < nbytes:
            n = min(self.chunk, nbytes - got)
            yield P.WaitFlag(self.bprod[parent], base_p + got + n)
            pview = self._views[parent]
            yield from ctx.smsc.copy_from(pview.sub(got, n), view.sub(got, n))
            got += n
            if children:
                yield P.SetFlag(self.bprod[me], base_m + got)

    # -- allreduce ---------------------------------------------------------

    def allreduce(self, comm, ctx, sview, rview, op, dtype) -> Iterator:
        size = comm.size
        me = comm.rank_of(ctx)
        if size == 1:
            yield P.Copy(src=sview, dst=rview)
            return
        nbytes = sview.length
        elems = nbytes // dtype.itemsize
        if nbytes <= self.small_max or elems < size:
            yield from self._allreduce_small(comm, ctx, me, sview, rview,
                                             op, dtype)
        else:
            yield from self._allreduce_ring(comm, ctx, me, sview, rview,
                                            op, dtype)

    def _allreduce_small(self, comm, ctx, me, sview, rview, op,
                         dtype) -> Iterator:
        """Knomial reduce through the cico slots, then knomial fan-out."""
        size = comm.size
        led = self._ledger(comm, me)
        nbytes = sview.length
        parent, children = knomial_tree(me, size, 0, self.radix)
        # Reduce stage.
        srcs = []
        for child in children:
            yield P.WaitFlag(self.prod[child], led["prod"][child] + 1)
            srcs.append(self.slot[child].sub(0, nbytes))
        if srcs:
            yield P.Reduce(srcs=tuple(srcs + [sview]),
                           dst=self.slot[me].sub(0, nbytes),
                           op=op.ufunc, dtype=dtype.np_dtype)
        else:
            yield P.Copy(src=sview, dst=self.slot[me].sub(0, nbytes))
        yield P.SetFlag(self.prod[me], led["prod"][me] + 1)
        for q in range(size):
            led["prod"][q] += 1
        # Fan-out stage: the root's slot now has the result.
        if parent is None:
            yield P.Copy(src=self.slot[me].sub(0, nbytes),
                         dst=rview.sub(0, nbytes))
            yield P.SetFlag(self.bprod[me], led["bprod"][me] + 1)
        else:
            yield P.WaitFlag(self.bprod[0], led["bprod"][0] + 1)
            yield P.Copy(src=self.slot[0].sub(0, nbytes),
                         dst=rview.sub(0, nbytes))
        yield from self._finish(comm, ctx, me, 0, children, led)
        led["bprod"][0] += 1

    def _allreduce_ring(self, comm, ctx, me, sview, rview, op,
                        dtype) -> Iterator:
        """Ring reduce-scatter over direct XPMEM loads + direct allgather."""
        size = comm.size
        led = self._ledger(comm, me)
        nbytes = sview.length
        elems = nbytes // dtype.itemsize
        base_e, extra = divmod(elems, size)
        bounds = [0]
        for i in range(size):
            bounds.append(bounds[-1]
                          + (base_e + (1 if i < extra else 0)) * dtype.itemsize)

        def slc(v, j):
            return v.sub(bounds[j], bounds[j + 1] - bounds[j])

        self._views[me] = rview
        yield from comm.node.xpmem.expose(rview.buf)
        left = (me - 1) % size
        step_base = led["step"][me]
        step_base_left = led["step"][left]
        rs_base = [led["rsdone"][q] for q in range(size)]
        yield P.Copy(src=sview, dst=rview)
        yield P.SetFlag(self.step[me], step_base + 1)
        for s in range(1, size):
            j = (me - s) % size
            yield P.WaitFlag(self.step[left], step_base_left + s)
            lview = self._views[left]
            yield from ctx.smsc.reduce_from(
                [slc(lview, j)], slc(rview, j),
                op=op.ufunc, dtype=dtype.np_dtype, accumulate=True,
            )
            yield P.SetFlag(self.step[me], step_base + s + 1)
        yield P.SetFlag(self.rsdone[me], rs_base[me] + 1)
        # Direct allgather: pull each finished slice from its owner.
        for j in range(size):
            owner = (j - 1) % size
            if owner == me:
                continue
            yield P.WaitFlag(self.rsdone[owner], rs_base[owner] + 1)
            oview = self._views[owner]
            yield from ctx.smsc.copy_from(slc(oview, j), slc(rview, j))
        # Ledgers (identical updates on every rank).
        for q in range(size):
            led["step"][q] += size
            led["rsdone"][q] += 1
        # Every rank's rview is read by the whole ring during the allgather,
        # so a subtree-scoped ack is not enough: full fence before reuse.
        yield from self.barrier(comm, ctx)

    # -- reduce -----------------------------------------------------------

    def reduce(self, comm, ctx, sview, rview, op, dtype, root) -> Iterator:
        """Knomial tree with direct XPMEM reduction of child contributions."""
        size = comm.size
        me = comm.rank_of(ctx)
        if size == 1:
            if rview is not None:
                yield P.Copy(src=sview, dst=rview)
            return
        led = self._ledger(comm, me)
        nbytes = sview.length
        parent, children = knomial_tree(me, size, root, self.radix)
        contrib = sview
        if children:
            dst = rview if me == root and rview is not None \
                else self._scratch_view(ctx, nbytes)
            srcs = []
            for child in children:
                yield P.WaitFlag(self.prod[child], led["prod"][child] + 1)
                srcs.append(self._views[child].sub(0, nbytes))
            yield from ctx.smsc.reduce_from(
                srcs + [sview], dst, op=op.ufunc, dtype=dtype.np_dtype
            )
            # Tell the children their contributions were consumed, so their
            # scratch buffers are safe to reuse next op.
            yield P.SetFlag(self.bprod[me], led["bprod"][me] + 1)
            contrib = dst
        if parent is not None:
            self._views[me] = contrib
            yield from comm.node.xpmem.expose(contrib.buf)
            yield P.SetFlag(self.prod[me], led["prod"][me] + 1)
            yield P.WaitFlag(self.bprod[parent], led["bprod"][parent] + 1)
        for q in range(size):
            led["prod"][q] += 1
            _, ch = knomial_tree(q, size, root, self.radix)
            if ch:
                led["bprod"][q] += 1
        yield from self._finish(comm, ctx, me, root, children, led)

    def barrier(self, comm, ctx) -> Iterator:
        """Knomial gather of arrivals + knomial release."""
        size = comm.size
        if size == 1:
            return
        me = comm.rank_of(ctx)
        led = self._ledger(comm, me)
        parent, children = knomial_tree(me, size, 0, self.radix)
        for child in children:
            yield P.WaitFlag(self.prod[child], led["prod"][child] + 1)
        if parent is not None:
            yield P.SetFlag(self.prod[me], led["prod"][me] + 1)
            yield P.WaitFlag(self.bprod[parent], led["bprod"][parent] + 1)
        if children:
            yield P.SetFlag(self.bprod[me], led["bprod"][me] + 1)
        for q in range(size):
            led["prod"][q] += 1
            _, ch = knomial_tree(q, size, 0, self.radix)
            if ch:
                led["bprod"][q] += 1
