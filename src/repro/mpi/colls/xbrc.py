"""`xbrc` — XPMEM-Based Reduction Collectives (Hashmi et al. [5]).

Reimplementation of the IPDPS'18 shared-address-space design the paper
compares against for Allreduce/Reduce (intra-node phase):

* the message is partitioned among **all** ranks (flat — no topology
  awareness, the property that makes it behave like XHC-flat in Fig. 11);
* each partition owner reduces that slice *directly out of every peer's
  send buffer* through XPMEM mappings (kept in a registration cache);
* for Allreduce, every rank then pulls each finished slice straight from
  its owner's receive buffer — an all-to-all fan-in with no hierarchy;
* a minimum partition granularity serializes small messages onto a single
  reducer (the linearization the paper observes for small sizes).
"""

from __future__ import annotations

from typing import Iterator

from ...sim import primitives as P
from ...sim.syncobj import Flag
from .base import CollComponent, partition

MIN_SLICE = 1024


class Xbrc(CollComponent):
    name = "xbrc"

    def __init__(self, min_slice: int = MIN_SLICE) -> None:
        super().__init__()
        self.min_slice = min_slice

    def _setup(self, comm) -> None:
        self.posted = []   # source/receive buffers published (per-op)
        self.done = []     # slice reduction finished
        self.ack = []      # op completed
        for ctx in comm.ranks:
            self.posted.append(Flag(f"xbrc.posted.{ctx.rank}", ctx.core))
            self.done.append(Flag(f"xbrc.done.{ctx.rank}", ctx.core))
            self.ack.append(Flag(f"xbrc.ack.{ctx.rank}", ctx.core))
        self.release = Flag("xbrc.release", comm.ranks[0].core)
        self._sviews: dict[int, object] = {}
        self._rviews: dict[int, object] = {}

    def _next_base(self, comm, me) -> int:
        st = comm.rank_state[me]
        base = st.get("ops", 0)
        st["ops"] = base + 1
        return base

    def allreduce(self, comm, ctx, sview, rview, op, dtype) -> Iterator:
        yield from self._impl(comm, ctx, sview, rview, op, dtype, root=None)

    def reduce(self, comm, ctx, sview, rview, op, dtype, root) -> Iterator:
        yield from self._impl(comm, ctx, sview, rview, op, dtype, root=root)

    def _impl(self, comm, ctx, sview, rview, op, dtype, root) -> Iterator:
        size = comm.size
        me = comm.rank_of(ctx)
        if size == 1:
            if rview is not None:
                yield P.Copy(src=sview, dst=rview)
            return
        base = self._next_base(comm, me)
        nbytes = sview.length
        slices = partition(nbytes, size, minimum=self.min_slice,
                           align=dtype.itemsize)

        # Publish our buffers (xpmem_make is one-time per buffer; the
        # registration caches on the reader side amortize the attaches).
        self._sviews[me] = sview
        yield from comm.node.xpmem.expose(sview.buf)
        if rview is not None:
            self._rviews[me] = rview
            yield from comm.node.xpmem.expose(rview.buf)
        yield P.SetFlag(self.posted[me], base + 1)

        # Phase 1: reduce our slice directly from every peer's sbuf.
        my_slice = slices[me] if me < len(slices) else None
        if my_slice is not None:
            off, n = my_slice
            srcs = []
            for r in range(size):
                if r != me:
                    yield P.WaitFlag(self.posted[r], base + 1)
                peer_s = sview if r == me else self._sviews[r]
                srcs.append(peer_s.sub(off, n))
            if root is None or me == root:
                dst = rview.sub(off, n)
            else:
                # Reduce straight into the root's receive buffer (the
                # truly-single-copy reduction XPMEM enables, SSII-B).
                yield P.WaitFlag(self.posted[root], base + 1)
                dst = self._rviews[root].sub(off, n)
            yield from ctx.smsc.reduce_from(srcs, dst, op=op.ufunc,
                                            dtype=dtype.np_dtype)
        yield P.SetFlag(self.done[me], base + 1)

        if root is None:
            # Phase 2: pull every other slice from its owner (flat fan-in).
            for owner, (off, n) in enumerate(slices):
                if owner == me:
                    continue
                yield P.WaitFlag(self.done[owner], base + 1)
                yield from ctx.smsc.copy_from(
                    self._rviews[owner].sub(off, n), rview.sub(off, n)
                )
        elif me == root:
            for owner in range(len(slices)):
                if owner != root:
                    yield P.WaitFlag(self.done[owner], base + 1)

        # Flat release so every buffer is safe to reuse next op.
        if me == 0:
            for r in range(1, size):
                yield P.WaitFlag(self.ack[r], base + 1)
            yield P.SetFlag(self.release, base + 1)
        else:
            yield P.SetFlag(self.ack[me], base + 1)
            yield P.WaitFlag(self.release, base + 1)
