"""Collective components (OpenMPI coll-framework equivalents).

========= =====================================================================
Component Models
========= =====================================================================
tuned     OpenMPI's default: p2p-based trees/rings over UCX-style transport
sm        OpenMPI's shared-memory collectives (CICO + atomic fetch-add sync)
ucc       The UCC library: static knomial/ring schedules, XPMEM single-copy
smhc      Jain et al. [18]: shared-memory hierarchical collectives
xbrc      Hashmi et al. [5]: XPMEM-based flat reduction collectives
xhc-tuned XHC dispatched per message size from a tuned decision table
========= =====================================================================

The paper's own contribution lives in :mod:`repro.xhc`.
"""

from .base import CollComponent
from .tuned import Tuned
from .sm import SmColl
from .ucc import Ucc
from .smhc import Smhc
from .xbrc import Xbrc
from .tunedxhc import TunedXhc

__all__ = ["CollComponent", "Tuned", "SmColl", "Ucc", "Smhc", "Xbrc",
           "TunedXhc"]
