"""Component interface and shared algorithm helpers."""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from ...errors import MPIError

if TYPE_CHECKING:  # pragma: no cover
    from ..world import Communicator


class CollComponent:
    """Base class: one instance serves exactly one communicator."""

    name = "base"

    def __init__(self) -> None:
        self.comm: "Communicator | None" = None

    def setup(self, comm: "Communicator") -> None:
        if self.comm is not None:
            raise MPIError(
                f"component {self.name!r} already bound to a communicator; "
                f"create a fresh instance per communicator"
            )
        self.comm = comm
        self._setup(comm)

    def _setup(self, comm: "Communicator") -> None:
        pass

    # Collective entry points; subclasses override what they support.

    def bcast(self, comm, ctx, view, root) -> Iterator:
        raise MPIError(f"{self.name} does not implement bcast")

    def allreduce(self, comm, ctx, sview, rview, op, dtype) -> Iterator:
        raise MPIError(f"{self.name} does not implement allreduce")

    def reduce(self, comm, ctx, sview, rview, op, dtype, root) -> Iterator:
        raise MPIError(f"{self.name} does not implement reduce")

    def barrier(self, comm, ctx) -> Iterator:
        raise MPIError(f"{self.name} does not implement barrier")

    def gather(self, comm, ctx, sview, rview, root) -> Iterator:
        raise MPIError(f"{self.name} does not implement gather")

    def scatter(self, comm, ctx, sview, rview, root) -> Iterator:
        raise MPIError(f"{self.name} does not implement scatter")

    def allgather(self, comm, ctx, sview, rview) -> Iterator:
        raise MPIError(f"{self.name} does not implement allgather")

    def alltoall(self, comm, ctx, sview, rview) -> Iterator:
        raise MPIError(f"{self.name} does not implement alltoall")

    def reduce_scatter_block(self, comm, ctx, sview, rview, op,
                             dtype) -> Iterator:
        raise MPIError(f"{self.name} does not implement reduce_scatter")


# -- tree shapes --------------------------------------------------------------


def binomial_tree(rank: int, size: int, root: int) -> tuple[int | None, list[int]]:
    """(parent, children) of ``rank`` in a root-rotated binomial tree.

    MPICH convention: a rank's parent clears its lowest set (relative) bit;
    children sit at lower bit positions, listed far-subtree first.
    """
    rel = (rank - root) % size
    parent = None if rel == 0 else ((rel & (rel - 1)) + root) % size
    children_rel: list[int] = []
    mask = 1
    while mask < size and not rel & mask:
        child = rel + mask
        if child < size:
            children_rel.append(child)
        mask <<= 1
    children_rel.reverse()  # far subtree first, matching MPICH send order
    return parent, [(c + root) % size for c in children_rel]


def knomial_tree(rank: int, size: int, root: int,
                 radix: int) -> tuple[int | None, list[int]]:
    """(parent, children) in a root-rotated k-nomial tree.

    A rank's parent clears its lowest nonzero base-``radix`` digit; its
    children add r*digit (r in 1..radix-1) at every digit position below
    that, listed far-subtree first.
    """
    if radix < 2:
        raise MPIError("knomial radix must be >= 2")
    rel = (rank - root) % size
    parent_rel = None
    children_rel: list[int] = []
    digit = 1
    while digit < size:
        r = (rel // digit) % radix
        if r != 0:
            parent_rel = rel - r * digit
            break
        for r in range(1, radix):
            child = rel + r * digit
            if child < size:
                children_rel.append(child)
        digit *= radix
    children_rel.sort(reverse=True)
    parent = None if parent_rel is None else (parent_rel + root) % size
    return parent, [(c + root) % size for c in children_rel]


def chain_next(rank: int, size: int, root: int) -> tuple[int | None, int | None]:
    """(prev, next) of ``rank`` in a root-rotated chain (pipeline)."""
    rel = (rank - root) % size
    prev = None if rel == 0 else ((rel - 1) + root) % size
    nxt = None if rel == size - 1 else ((rel + 1) + root) % size
    return prev, nxt


def chunks(total: int, chunk: int) -> Iterator[tuple[int, int]]:
    """Yield (offset, nbytes) pieces of a ``total``-byte message."""
    if chunk <= 0:
        raise MPIError("chunk size must be positive")
    off = 0
    while off < total:
        n = min(chunk, total - off)
        yield off, n
        off += n


def partition(total: int, parts: int, minimum: int = 1,
              align: int = 1) -> list[tuple[int, int]]:
    """Split [0, total) into up to ``parts`` contiguous (offset, nbytes)
    ranges, each at least ``minimum`` bytes (except possibly the last one)
    and aligned to ``align``.

    Fewer than ``parts`` ranges come back for small totals — the "minimum
    index limit" of the paper's Allreduce (SSIV-B, step 2a): with little
    data, only some members reduce.
    """
    if total <= 0:
        return []
    if parts < 1:
        raise MPIError("partition needs at least one part")
    base = max(minimum, -(-total // parts))
    if align > 1:
        base = -(-base // align) * align
    out: list[tuple[int, int]] = []
    off = 0
    while off < total:
        n = min(base, total - off)
        out.append((off, n))
        off += n
    return out
