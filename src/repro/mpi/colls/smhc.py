"""`smhc` — Shared-Memory-based Hierarchical Collectives (Jain et al. [18]).

Reimplementation of the SC'18 design the paper compares against: all data
moves through shared-memory staging buffers (copy-in-copy-out, never
single-copy), synchronized by single-writer flags, with an optional
socket-aware two-level tree for both flag and data propagation.

Fragmentation: payloads stream through fixed staging slots (32 KiB) with a
completion handshake per fragment — this double copy is what XHC's XPMEM
path beats for large messages (Fig. 8).

Variants:
  * ``Smhc(tree=False)`` — flat: everyone stages off the root.
  * ``Smhc(tree=True)``  — socket leaders re-stage for their socket.
"""

from __future__ import annotations

from typing import Iterator

from ...shmem.segment import SharedSegment
from ...sim import primitives as P
from ...sim.syncobj import Flag
from .base import CollComponent, chunks

FRAGMENT = 32 * 1024


class Smhc(CollComponent):
    name = "smhc"

    def __init__(self, tree: bool = False, fragment: int = FRAGMENT) -> None:
        super().__init__()
        self.tree = tree
        self.fragment = fragment

    def _setup(self, comm) -> None:
        topo = comm.node.topo
        n = comm.size
        self.slot = []
        self.rslot = []
        self.prod = []     # staging-slot fragment counters (single writer)
        self.posted = []   # reduce contributions posted
        self.ack = []      # fragments consumed (single-writer per rank)
        for ctx in comm.ranks:
            seg = SharedSegment(ctx.space, f"smhc.{ctx.rank}",
                                2 * self.fragment)
            self.slot.append(seg.reserve("in", self.fragment))
            self.rslot.append(seg.reserve("stage", self.fragment))
            self.prod.append(Flag(f"smhc.prod.{ctx.rank}", ctx.core))
            self.posted.append(Flag(f"smhc.posted.{ctx.rank}", ctx.core))
            self.ack.append(Flag(f"smhc.ack.{ctx.rank}", ctx.core))
        # Socket-aware grouping: ranks partitioned by the socket of their
        # core; the lowest rank in each socket is its leader.
        if self.tree:
            groups: dict[int, list[int]] = {}
            for r, ctx in enumerate(comm.ranks):
                sock = topo.socket_of_core(ctx.core)
                groups.setdefault(sock.index if sock else 0, []).append(r)
            self.sockets = [sorted(g) for _, g in sorted(groups.items())]
        else:
            self.sockets = [list(range(n))]

    def _state(self, comm, me) -> dict:
        st = comm.rank_state[me]
        if not st:
            st["prod"] = [0] * comm.size
            st["posted"] = [0] * comm.size
            st["ack"] = [0] * comm.size
        return st

    def _roles(self, me: int, root: int):
        """(stage_parent, consumers) under the current root.

        The root stages for socket leaders (and its own socket's members);
        each other socket's leader re-stages for its members. The root's
        socket uses the root itself as its leader.
        """
        leaders = []
        my_leader = None
        consumers: list[int] = []
        for group in self.sockets:
            leader = root if root in group else group[0]
            leaders.append(leader)
            if me in group:
                my_leader = leader
                if me == leader:
                    consumers.extend(r for r in group if r != me)
        if me == root:
            consumers.extend(l for l in leaders if l != root)
            return None, sorted(set(consumers))
        if me == my_leader:
            return root, sorted(set(consumers))
        return my_leader, []

    # -- broadcast --------------------------------------------------------

    def bcast(self, comm, ctx, view, root) -> Iterator:
        size = comm.size
        if size == 1 or view.length == 0:
            return
        me = comm.rank_of(ctx)
        st = self._state(comm, me)
        parent, consumers = self._roles(me, root)
        nbytes = view.length
        nfrag = -(-nbytes // self.fragment)
        if parent is not None:
            yield P.Trace("message", {
                "src": comm.core_of(parent), "dst": ctx.core,
                "src_rank": parent, "dst_rank": me,
                "nbytes": nbytes, "proto": "smhc",
            })
        prod_base = list(st["prod"])
        ack_base = list(st["ack"])
        frag_i = 0
        for off, n in chunks(nbytes, self.fragment):
            if parent is None:
                src = view.sub(off, n)
            else:
                yield P.WaitFlag(self.prod[parent], prod_base[parent]
                                 + frag_i + 1)
                src = self.rslot[parent].sub(0, n)
                yield P.Copy(src=src, dst=view.sub(off, n))
                src = view.sub(off, n)
                yield P.SetFlag(self.ack[me], ack_base[me] + frag_i + 1)
            if consumers:
                # Stage for our consumers, re-using the slot only once they
                # all drained the previous fragment.
                if frag_i > 0:
                    for c in consumers:
                        yield P.WaitFlag(self.ack[c], ack_base[c] + frag_i)
                yield P.Copy(src=src, dst=self.rslot[me].sub(0, n))
                yield P.SetFlag(self.prod[me], prod_base[me] + frag_i + 1)
            frag_i += 1
        if consumers:
            for c in consumers:
                yield P.WaitFlag(self.ack[c], ack_base[c] + nfrag)
        # Ledger: identical update everywhere.
        for q in range(size):
            p, cons = self._roles(q, root)
            if cons:
                st["prod"][q] += nfrag
            if p is not None:
                st["ack"][q] += nfrag

    # -- allreduce / reduce --------------------------------------------------

    def allreduce(self, comm, ctx, sview, rview, op, dtype) -> Iterator:
        yield from self._reduce_impl(comm, ctx, sview, rview, op, dtype,
                                     root=0, fan_out=True)

    def reduce(self, comm, ctx, sview, rview, op, dtype, root) -> Iterator:
        yield from self._reduce_impl(comm, ctx, sview, rview, op, dtype,
                                     root=root, fan_out=False)

    def _reduce_impl(self, comm, ctx, sview, rview, op, dtype, root,
                     fan_out) -> Iterator:
        """Leaders aggregate their socket's contributions fragment-wise in
        shared memory; the root aggregates the leaders; optional fan-out
        re-uses the bcast staging path.

        Slot-reuse protocol: a contributor may overwrite its staging slot
        for fragment f+1 only after its aggregator's consumed counter (the
        aggregator's ``ack`` flag) covers fragment f.
        """
        size = comm.size
        me = comm.rank_of(ctx)
        if size == 1:
            if rview is not None:
                yield P.Copy(src=sview, dst=rview)
            return
        st = self._state(comm, me)
        nbytes = sview.length
        nfrag = -(-nbytes // self.fragment)
        parent, consumers = self._roles(me, root)
        contributors = consumers  # reduce direction mirrors the fan-out tree
        posted_base = list(st["posted"])
        ack_base = list(st["ack"])
        frag_i = 0
        for off, n in chunks(nbytes, self.fragment):
            if parent is not None:
                # Contribute: members post raw data, leaders post their
                # socket's partial sum (computed below).
                if frag_i > 0:
                    yield P.WaitFlag(self.ack[parent],
                                     ack_base[parent] + frag_i)
                if not contributors:
                    yield P.Copy(src=sview.sub(off, n),
                                 dst=self.slot[me].sub(0, n))
                    yield P.SetFlag(self.posted[me],
                                    posted_base[me] + frag_i + 1)
            if contributors:
                srcs = []
                for c in contributors:
                    yield P.WaitFlag(self.posted[c],
                                     posted_base[c] + frag_i + 1)
                    srcs.append(self.slot[c].sub(0, n))
                dst = (rview.sub(off, n) if me == root and rview is not None
                       else self.slot[me].sub(0, n))
                yield P.Reduce(srcs=tuple(srcs + [sview.sub(off, n)]),
                               dst=dst, op=op.ufunc, dtype=dtype.np_dtype)
                yield P.SetFlag(self.ack[me], ack_base[me] + frag_i + 1)
                if parent is not None:  # leader forwards its partial sum
                    yield P.SetFlag(self.posted[me],
                                    posted_base[me] + frag_i + 1)
            frag_i += 1
        if parent is not None:
            # The final fragment must be consumed before our slot can be
            # reused by the next operation.
            yield P.WaitFlag(self.ack[parent], ack_base[parent] + nfrag)
        # Ledger: identical update everywhere.
        for q in range(size):
            p, cons = self._roles(q, root)
            if p is not None or cons:
                st["posted"][q] += nfrag
            if cons:
                st["ack"][q] += nfrag
        if fan_out:
            yield from self.bcast(comm, ctx, rview, root)

    def barrier(self, comm, ctx) -> Iterator:
        size = comm.size
        if size == 1:
            return
        me = comm.rank_of(ctx)
        st = self._state(comm, me)
        parent, consumers = self._roles(me, 0)
        for c in consumers:
            yield P.WaitFlag(self.posted[c], st["posted"][c] + 1)
        if parent is not None:
            yield P.SetFlag(self.posted[me], st["posted"][me] + 1)
            yield P.WaitFlag(self.prod[parent], st["prod"][parent] + 1)
        if consumers:
            yield P.SetFlag(self.prod[me], st["prod"][me] + 1)
        for q in range(size):
            p, cons = self._roles(q, 0)
            if p is not None or cons:
                st["posted"][q] += 1
            if cons:
                st["prod"][q] += 1
        # posted ledger: only non-root participants bump... handled above.
