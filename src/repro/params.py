"""MCA-like runtime tuning parameters.

OpenMPI exposes component knobs through its Modular Component Architecture
(MCA) parameter system; XHC's chunk sizes, CICO threshold and hierarchy
sensitivity are all runtime-configurable that way (paper SSIII-B, SSIII-D).
This module provides the equivalent: a typed parameter registry with
per-instance overrides.

Usage::

    params = ParamSet(XHC_PARAMS, {"xhc_cico_threshold": 2048})
    params["xhc_cico_threshold"]   # -> 2048
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterator, Mapping

from .errors import ConfigError


@dataclass(frozen=True)
class Param:
    """Declaration of a single tunable parameter."""

    name: str
    default: Any
    doc: str = ""
    # Optional validation hook; raises/returns False to reject a value.
    check: Callable[[Any], bool] | None = None

    def validate(self, value: Any) -> Any:
        if self.check is not None and not self.check(value):
            raise ConfigError(
                f"invalid value {value!r} for parameter {self.name!r}"
            )
        return value


class ParamRegistry:
    """An ordered collection of :class:`Param` declarations."""

    def __init__(self, params: list[Param] | None = None) -> None:
        self._params: dict[str, Param] = {}
        for p in params or []:
            self.declare(p)

    def declare(self, param: Param) -> Param:
        if param.name in self._params:
            raise ConfigError(f"duplicate parameter {param.name!r}")
        self._params[param.name] = param
        return param

    def __contains__(self, name: str) -> bool:
        return name in self._params

    def __getitem__(self, name: str) -> Param:
        try:
            return self._params[name]
        except KeyError:
            raise ConfigError(f"unknown parameter {name!r}") from None

    def __iter__(self) -> Iterator[Param]:
        return iter(self._params.values())

    def names(self) -> list[str]:
        return list(self._params)

    def merged(self, other: "ParamRegistry") -> "ParamRegistry":
        """A new registry containing this registry's params plus ``other``'s."""
        out = ParamRegistry(list(self))
        for p in other:
            out.declare(p)
        return out


class ParamSet:
    """Concrete values for a registry: defaults plus explicit overrides."""

    def __init__(
        self,
        registry: ParamRegistry,
        overrides: Mapping[str, Any] | None = None,
    ) -> None:
        self.registry = registry
        self._values: dict[str, Any] = {}
        for key, value in (overrides or {}).items():
            self.set(key, value)

    def set(self, name: str, value: Any) -> None:
        param = self.registry[name]
        self._values[name] = param.validate(value)

    def __getitem__(self, name: str) -> Any:
        param = self.registry[name]
        return self._values.get(name, param.default)

    def get(self, name: str, default: Any = None) -> Any:
        if name not in self.registry:
            return default
        return self[name]

    def overridden(self) -> dict[str, Any]:
        return dict(self._values)

    def copy_with(self, **overrides: Any) -> "ParamSet":
        merged = dict(self._values)
        merged.update(overrides)
        return ParamSet(self.registry, merged)

    def as_dict(self) -> dict[str, Any]:
        return {p.name: self[p.name] for p in self.registry}


def positive(value: Any) -> bool:
    return isinstance(value, (int, float)) and value > 0


def non_negative(value: Any) -> bool:
    return isinstance(value, (int, float)) and value >= 0
