"""The perf suite: engine/pricing microbenches + the reference macro.

Wall-clock measurement is deliberately simple — ``time.perf_counter``
around the work, minimum over ``repeats`` — because the suite's job is
trend detection with headroom, not publishable numbers. Every reported
record carries both wall and CPU time: on a noisy box the CPU number is
the steadier of the two, and the emitted BENCH record documents which
one a threshold was set against.

This module is the one sanctioned wall-clock user inside ``src/repro``
(simulated code must not read the clock — lint rule RC101); measuring
the simulator from the outside is exactly the exception.
"""

from __future__ import annotations

import time  # lint: disable=RC101 - perf harness measures wall clock

from ..sim import primitives as P

# The reference macro workload (ISSUE 5 acceptance): the pipelined-large
# message range where per-chunk engine overhead dominates, both
# collective shapes, one full socket, observe/check off.
MACRO_SIZES = (65536, 131072, 262144, 524288, 1048576)
MACRO_KINDS = ("bcast", "allreduce")
MACRO_SYSTEM = "epyc-1p"
MACRO_NRANKS = 32
MACRO_ITERS = 5

QUICK_SIZES = (65536, 1048576)
QUICK_ITERS = 2

# CI floor for the engine microbench (events/second, CPU time). The
# optimized engine clears ~10x this on the reference runner; the floor
# only exists to catch order-of-magnitude event-loop regressions, so it
# is set with wide headroom rather than close to the measured rate.
ENGINE_EVENTS_PER_SEC_FLOOR = 30_000.0

# Engines the macro can run under, and the CI parity gate for the
# array engine: per-point |array - event| / event simulated-latency
# deviation must stay under this bound. The documented worst case
# (docs/performance.md) is ~0.72 at arm-n1 1 MiB allreduce, but the
# macro runs epyc-1p only, where the worst point is ~0.39 — the gate is
# set above the macro's documented envelope, not the global one.
MACRO_ENGINES = ("event", "array")
PARITY_REL_TOL = 0.50


# -- engine microbench -------------------------------------------------------

def _storm_node():
    from ..exec.worker import get_topology
    from ..node import Node
    return Node(get_topology(MACRO_SYSTEM))


def run_engine_micro(rounds: int = 2000, nprocs: int = 8,
                     repeats: int = 3) -> dict:
    """A synthetic event storm through the bare engine.

    ``nprocs`` processes on distinct cores run a flag ring: each round,
    process ``i`` stores its round number into its own flag, waits on its
    left neighbour's flag, and does a tiny compute. Exercises exactly the
    per-event machinery the fast path optimizes (heap, handler dispatch,
    wait satisfaction, flag wake) with no pricing variance, so the
    events/second number isolates event-loop overhead.
    """
    from ..sim.syncobj import Flag

    best_wall = best_cpu = float("inf")
    events = 0
    for _ in range(repeats):
        node = _storm_node()
        flags = [Flag(f"perf.ring.{i}", owner_core=i)
                 for i in range(nprocs)]

        def ring(me: int):
            left = flags[me - 1]
            mine = flags[me]
            for r in range(1, rounds + 1):
                yield P.SetFlag(mine, r)
                yield P.WaitFlag(left, r)
                yield P.Compute(1e-9)

        for i in range(nprocs):
            node.engine.spawn(ring(i), core=i, name=f"ring{i}")
        wall0 = time.perf_counter()
        cpu0 = time.process_time()
        node.engine.run()
        wall = time.perf_counter() - wall0
        cpu = time.process_time() - cpu0
        events = node.engine.events_processed
        if wall < best_wall:
            best_wall = wall
        if cpu < best_cpu:
            best_cpu = cpu
    return {
        "events": events,
        "wall_s": best_wall,
        "cpu_s": best_cpu,
        "events_per_sec": events / best_cpu if best_cpu > 0 else 0.0,
    }


# -- pricing microbench ------------------------------------------------------

def run_pricing_micro(calls: int = 20000, repeats: int = 3) -> dict:
    """``plan_copy_span`` throughput, memoized vs cold.

    Prices the same steady-state chunk read repeatedly — the shape the
    span-signature memo is built for — then repeats it with the memo
    disabled. The ratio is the memo's measured win; a collapse toward
    1.0 means the key shape regressed (every call missing).
    """
    def measure(memo_enabled: bool) -> float:
        node = _storm_node()
        node._pricing_memo_enabled = memo_enabled
        sp = node.new_address_space(0, 0)
        src = sp.alloc("perf.src", 1 << 20)
        dst = sp.alloc("perf.dst", 1 << 20)
        # Warm the cache state once so the signature is stable.
        plan = node.plan_copy_span
        _d, _r, complete = plan(1, src, 0, 16384, dst, 0, 16384, 1.0)
        if complete is not None:
            complete()
        best = float("inf")
        for _ in range(repeats):
            t0 = time.process_time()
            for _i in range(calls):
                plan(1, src, 0, 16384, dst, 0, 16384, 1.0)
            t = time.process_time() - t0
            if t < best:
                best = t
        return calls / best if best > 0 else 0.0

    memo_rate = measure(True)
    cold_rate = measure(False)
    return {
        "calls": calls,
        "memo_calls_per_sec": memo_rate,
        "cold_calls_per_sec": cold_rate,
        "memo_speedup": memo_rate / cold_rate if cold_rate > 0 else 0.0,
    }


# -- macro workload ----------------------------------------------------------

def run_macro(quick: bool = False, repeats: int = 1,
              engine: str = "event") -> dict:
    """The reference collective workload; wall time is the headline.

    Runs every (kind, size) point of the ISSUE 5 macro sweep with
    observe/check off (the throughput configuration sweeps actually
    use). ``repeats`` takes the minimum over whole-sweep repetitions;
    ``engine`` selects the execution engine (ISSUE 10)."""
    from ..bench.components import make_component
    from ..bench.osu import run_collective
    from ..options import RunOptions

    sizes = QUICK_SIZES if quick else MACRO_SIZES
    iters = QUICK_ITERS if quick else MACRO_ITERS
    points = []
    best_wall = best_cpu = float("inf")
    for _ in range(max(1, repeats)):
        run_points = []
        wall0 = time.perf_counter()
        cpu0 = time.process_time()
        for kind in MACRO_KINDS:
            for size in sizes:
                t0 = time.perf_counter()
                lat = run_collective(
                    kind, MACRO_SYSTEM, MACRO_NRANKS,
                    lambda: make_component("xhc-tree"),
                    size, warmup=1, iters=iters, modify=True,
                    options=RunOptions(data_movement=False, engine=engine),
                )
                run_points.append({
                    "kind": kind,
                    "size": size,
                    "latency_us": lat * 1e6,
                    "wall_s": time.perf_counter() - t0,
                })
        wall = time.perf_counter() - wall0
        cpu = time.process_time() - cpu0
        if wall < best_wall:
            best_wall, points = wall, run_points
        if cpu < best_cpu:
            best_cpu = cpu
    return {
        "system": MACRO_SYSTEM,
        "nranks": MACRO_NRANKS,
        "iters": iters,
        "sizes": list(sizes),
        "kinds": list(MACRO_KINDS),
        "engine": engine,
        "quick": quick,
        "points": points,
        "wall_s": best_wall,
        "cpu_s": best_cpu,
    }


def profile_macro(quick: bool = True, top: int = 25) -> str:
    """cProfile the macro workload; returns the formatted hot list."""
    import cProfile
    import io
    import pstats

    pr = cProfile.Profile()
    pr.enable()
    run_macro(quick=quick)
    pr.disable()
    out = io.StringIO()
    pstats.Stats(pr, stream=out).sort_stats("tottime").print_stats(top)
    return out.getvalue()


# -- record assembly ---------------------------------------------------------

def emit_record(engine: dict, pricing: dict, macro: dict,
                baseline_wall_s: float | None = None,
                baseline_cpu_s: float | None = None,
                note: str = "",
                macros: dict | None = None,
                parity: list | None = None) -> dict:
    """The BENCH_<n>.json payload for one perf-suite run.

    ``baseline_*`` are reference macro times for the same workload
    measured on the *pre-optimization* tree on the same machine in the
    same session (interleaved runs; see docs/performance.md for why
    anything else is noise) — when given, the record carries the
    computed speedups.
    """
    from ..exec.cache import SIM_VERSION

    payload: dict = {
        "bench_schema": 1,
        "kind": "perf",
        "title": "repro perf suite (engine/pricing micro + macro)",
        "sim_version": SIM_VERSION,
        "engine_micro": engine,
        "pricing_micro": pricing,
        "macro": macro,
        "floor_events_per_sec": ENGINE_EVENTS_PER_SEC_FLOOR,
    }
    if baseline_wall_s is not None:
        payload["baseline"] = {
            "macro_wall_s": baseline_wall_s,
            "macro_cpu_s": baseline_cpu_s,
            "speedup_wall": (baseline_wall_s / macro["wall_s"]
                             if macro["wall_s"] > 0 else 0.0),
        }
        if baseline_cpu_s is not None:
            payload["baseline"]["speedup_cpu"] = (
                baseline_cpu_s / macro["cpu_s"]
                if macro["cpu_s"] > 0 else 0.0)
    if macros and len(macros) > 1:
        # One macro row per engine, plus the per-point parity table —
        # BENCH records with both engines carry the accuracy/speed
        # tradeoff alongside the headline numbers.
        payload["macro_by_engine"] = {
            name: {"wall_s": m["wall_s"], "cpu_s": m["cpu_s"],
                   "points": m["points"]}
            for name, m in macros.items()}
        if parity:
            payload["parity"] = parity
            payload["array_speedup_wall"] = (
                macros["event"]["wall_s"] / macros["array"]["wall_s"]
                if macros["array"]["wall_s"] > 0 else 0.0)
    if note:
        payload["note"] = note
    return payload


def macro_parity(macros: dict) -> list[dict]:
    """Per-point event-vs-array comparison rows from ``macros`` (a dict
    of ``run_macro`` results keyed by engine name).

    Each row carries the simulated-latency deviation (the accuracy the
    batched pricing trades) and the wall-clock speedup (what it buys).
    """
    if not ("event" in macros and "array" in macros):
        return []
    ev = {(p["kind"], p["size"]): p for p in macros["event"]["points"]}
    rows = []
    for p in macros["array"]["points"]:
        e = ev[(p["kind"], p["size"])]
        rows.append({
            "kind": p["kind"],
            "size": p["size"],
            "event_latency_us": e["latency_us"],
            "array_latency_us": p["latency_us"],
            "latency_rel_delta": (
                (p["latency_us"] - e["latency_us"]) / e["latency_us"]
                if e["latency_us"] else 0.0),
            "wall_speedup": (e["wall_s"] / p["wall_s"]
                             if p["wall_s"] > 0 else 0.0),
        })
    return rows


def run_perf(quick: bool = False, macro_repeats: int = 1,
             engine: str = "event") -> dict:
    """Run the full suite; returns {engine, pricing, macro, macros}.

    ``engine`` selects the macro engine(s): ``"event"``, ``"array"``, or
    ``"both"`` (ISSUE 10). ``macros`` maps engine name -> macro result;
    ``macro`` stays the event-engine result whenever it ran (the
    BENCH baselines are event-engine numbers) and the array result
    otherwise. With both engines, ``parity`` carries the per-point
    deviation/speedup rows from :func:`macro_parity`.
    """
    if engine not in MACRO_ENGINES + ("both",):
        raise ValueError(f"unknown perf engine {engine!r}")
    micro = run_engine_micro(rounds=500 if quick else 2000)
    pricing = run_pricing_micro(calls=5000 if quick else 20000)
    wanted = MACRO_ENGINES if engine == "both" else (engine,)
    macros = {e: run_macro(quick=quick, repeats=macro_repeats, engine=e)
              for e in wanted}
    macro = macros.get("event", macros.get("array"))
    return {"engine": micro, "pricing": pricing, "macro": macro,
            "macros": macros, "parity": macro_parity(macros)}
