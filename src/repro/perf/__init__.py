"""repro.perf — simulator performance measurement and regression guard.

The hot-path work (pricing memoization, CopyBatch, fast handler tables,
inlined cache accounting — see docs/performance.md) is only worth having
if it is *measured* and *protected*. This package is the measurement
side:

* :func:`~repro.perf.harness.run_engine_micro` — a synthetic event storm
  through the bare engine; reports events/second. CI asserts a floor on
  this number so an accidental slow-down in the event loop fails the
  build, not a later paper-figure sweep.
* :func:`~repro.perf.harness.run_pricing_micro` — ``plan_copy_span``
  throughput with the memo enabled and disabled; the ratio is the memo's
  measured win and a canary for key-shape regressions.
* :func:`~repro.perf.harness.run_macro` — the reference macro workload
  (64 KiB–1 MiB bcast+allreduce, 32 ranks, epyc-1p, observe/check off);
  its wall time is the headline number recorded in ``BENCH_<n>.json``.

Run via ``python -m repro perf`` (``--quick``, ``--profile``,
``--emit-bench``, ``--assert-floor``); see docs/performance.md.
"""

from .harness import (MACRO_KINDS, MACRO_SIZES, emit_record,
                      profile_macro, run_engine_micro, run_macro,
                      run_pricing_micro, run_perf)

__all__ = [
    "MACRO_KINDS", "MACRO_SIZES", "emit_record", "profile_macro",
    "run_engine_micro", "run_macro", "run_pricing_micro", "run_perf",
]
