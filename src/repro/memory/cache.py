"""Cache-residency state.

The simulator tracks buffer residency per cache with **high-water prefix
semantics**: a cache knows the furthest byte offset of each buffer that has
passed through it (``high_water``), and holds the trailing window
``[high_water - capacity, high_water)`` of that prefix. This is deliberately
coarser than a per-line directory, but it prices the access patterns the
algorithms under study actually produce — sequential chunked scans and
re-reads — exactly:

* a pipelined consumer reading chunk ``[a, b)`` behind a producer whose
  writes reached ``high_water >= b`` hits in the producer's cache;
* lock-step readers at the same offset get **no** phantom hits from their
  own progress (their caches' high water equals their own position);
* repeated broadcasts of an unmodified buffer hit in readers' caches
  (the osu benchmark artifact of Fig. 7), while a writer invalidates all
  other copies, forcing re-fetches;
* buffers larger than a cache lose their head by the time a scan finishes
  (the trailing window), so sequential re-reads of oversized buffers miss
  — bounding the Fig. 7 artifact;
* capacity pressure from other buffers evicts whole entries in LRU order.
"""

from __future__ import annotations

import enum
import itertools
from typing import Iterator, Optional, TYPE_CHECKING

from ..errors import MemoryModelError
from ..topology.objects import ObjKind, Topology

if TYPE_CHECKING:  # pragma: no cover
    from .address_space import Buffer
    from .model import MachineModel


class CacheKind(enum.Enum):
    PRIVATE = "private"   # per-core L2
    GROUP = "group"       # shared LLC group (Epyc CCX)
    SLC = "slc"           # socket-level system cache (ARM-N1)


class CacheLevel:
    """One cache: an LRU map of buffer-id -> high-water prefix offset."""

    __slots__ = ("id", "kind", "capacity", "home_cores", "_hw", "_total")

    _ids = itertools.count()

    def __init__(self, kind: CacheKind, capacity: int, home_cores: list[int]):
        if capacity <= 0:
            raise MemoryModelError("cache capacity must be positive")
        self.id = next(CacheLevel._ids)
        self.kind = kind
        self.capacity = capacity
        # Cores this cache is "at": its owner for PRIVATE, the LLC group's
        # members for GROUP, the socket's cores for SLC. Used for distance.
        self.home_cores = home_cores
        # buf_id -> high water, in LRU order (oldest first). A plain dict:
        # insertion order is the LRU order, and a pop+reinsert is the
        # "touch" that OrderedDict.move_to_end would perform — identical
        # eviction sequence, without the OrderedDict overhead.
        self._hw: dict[int, int] = {}
        self._total = 0

    # -- queries -----------------------------------------------------------

    def high_water(self, buf: "Buffer") -> int:
        return self._hw.get(buf.id, 0)

    def footprint(self, buf: "Buffer") -> int:
        return min(self._hw.get(buf.id, 0), self.capacity)

    def hit_bytes(self, buf: "Buffer", offset: int, length: int) -> int:  # hot-path
        """Bytes of ``[offset, offset+length)`` resident here (the trailing
        window of the buffer's prefix)."""
        hw = self._hw.get(buf.id)
        if hw is None or length <= 0:
            return 0
        lo = hw - self.capacity
        if lo < offset:
            lo = offset
        hi = offset + length
        if hi > hw:
            hi = hw
        n = hi - lo
        return n if n > 0 else 0

    def holds_any(self, buf: "Buffer") -> bool:
        return buf.id in self._hw

    @property
    def used(self) -> int:
        return self._total

    def buffers(self) -> Iterator[int]:
        return iter(self._hw)

    # -- mutation ------------------------------------------------------------

    def insert(self, buf: "Buffer", upto: int, system: "CacheSystem") -> None:  # hot-path
        """Record that the buffer's prefix now reaches ``upto`` here."""
        if upto <= 0:
            return
        hw = self._hw
        buf_id = buf.id
        old = hw.pop(buf_id, 0)
        new = old if old >= upto else upto
        size = buf.size
        if new > size:
            new = size
        hw[buf_id] = new
        if new == old:
            # High water unchanged: the pop+reinsert above was a pure LRU
            # touch. Totals, the holders directory and eviction pressure
            # are all exactly as before, so skip them.
            return
        cap = self.capacity
        self._total += ((new if new < cap else cap)
                        - (old if old < cap else cap))
        holders = system._holders.get(buf_id)
        if holders is None:
            system._holders[buf_id] = {self.id: self}  # lint: disable=RC106
        else:
            holders[self.id] = self
        if self._total > cap:
            self._evict(system, keep=buf_id)

    def invalidate(self, buf: "Buffer", system: "CacheSystem") -> None:
        old = self._hw.pop(buf.id, None)
        if old is not None:
            self._total -= min(old, self.capacity)
            holders = system._holders.get(buf.id)
            if holders is not None:
                holders.pop(self.id, None)

    def _evict(self, system: "CacheSystem", keep: int) -> None:
        while self._total > self.capacity and len(self._hw) > 1:
            victim_id = next(iter(self._hw))
            if victim_id == keep:
                self._hw[victim_id] = self._hw.pop(victim_id)  # re-queue
                victim_id = next(iter(self._hw))
                if victim_id == keep:  # pragma: no cover - single entry
                    return
            victim_hw = self._hw.pop(victim_id)
            self._total -= min(victim_hw, self.capacity)
            holders = system._holders.get(victim_id)
            if holders is not None:
                holders.pop(self.id, None)


class CacheSystem:
    """All caches of one machine plus the buffer-holders directory."""

    def __init__(self, topo: Topology, model: "MachineModel") -> None:
        self.topo = topo
        self.model = model
        self.private: list[CacheLevel] = [
            CacheLevel(CacheKind.PRIVATE, model.l2_size, [c.index])
            for c in topo.cores
        ]
        self.group: dict[int, CacheLevel] = {}
        if model.llc_size > 0 and topo.has_llc:
            for llc in topo.objects(ObjKind.LLC):
                self.group[llc.index] = CacheLevel(
                    CacheKind.GROUP, model.llc_size,
                    [c.index for c in llc.cores()],
                )
        self.slc: dict[int, CacheLevel] = {}
        if model.slc_size > 0:
            for sock in topo.objects(ObjKind.SOCKET):
                self.slc[sock.index] = CacheLevel(
                    CacheKind.SLC, model.slc_size,
                    [c.index for c in sock.cores()],
                )
        # buf_id -> insertion-ordered {cache_level_id: CacheLevel} of the
        # caches holding some of it (ordered, so tie-breaking among
        # equally-good sources is deterministic across runs).
        self._holders: dict[int, dict[int, CacheLevel]] = {}
        # core -> its shared cache (GROUP on Epycs, SLC on ARM), if any.
        self._shared_of_core: list[Optional[CacheLevel]] = []
        for core in topo.cores:
            shared: Optional[CacheLevel] = None
            if self.group:
                llc = topo.llc_of_core(core.index)
                if llc is not None:
                    shared = self.group[llc.index]
            elif self.slc:
                sock = topo.socket_of_core(core.index)
                if sock is not None:
                    shared = self.slc[sock.index]
            self._shared_of_core.append(shared)

    # -- lookup ---------------------------------------------------------------

    def shared_cache_of(self, core: int) -> Optional[CacheLevel]:
        return self._shared_of_core[core]

    def holders_of(self, buf: "Buffer"):
        return self._holders.get(buf.id, {}).values()

    def span_signature(self, buf: "Buffer", off: int, length: int) -> tuple:  # hot-path
        """Cache-state signature of reading ``buf[off:off+length)``.

        A flat tuple alternating ``(cache_level_id, hit_bytes)`` over the
        holders that cover any of the span, *in directory insertion
        order* — exactly what source selection
        (:meth:`~repro.node.Node._cache_source_span`) consumes: which
        caches can serve the span, how much of it each covers, and the
        deterministic tie-break order. Distances, routes and capacities
        are static per cache level, so two calls with equal keys and
        equal span signatures price identically.

        Deliberately span-relative rather than a hash of raw high-water
        marks: benchmark iterations leave trails of slightly different
        high waters that all cover a chunk identically, and those should
        compare equal. (:class:`~repro.node.Node` memoizes pricing by the
        even-coarser *selected source* — see
        :meth:`~repro.node.Node.copy_terms_span` — because directory
        insertion order still churns this signature across iterations;
        the signature remains the full pricing-relevant state and is the
        reference for what the winner key must pin.)
        """
        holders = self._holders.get(buf.id)
        if not holders:
            return ()
        buf_id = buf.id
        end = off + length
        parts = []  # lint: disable=RC106 - the signature being built
        for level in holders.values():
            # Inlined CacheLevel.hit_bytes (the directory guarantees
            # presence, so no .get, and the span is known positive).
            hw = level._hw[buf_id]
            lo = hw - level.capacity
            if lo < off:
                lo = off
            hi = hw if hw < end else end
            if hi > lo:
                parts.append(level.id)
                parts.append(hi - lo)
        return tuple(parts)

    # -- read/write accounting ---------------------------------------------

    def record_read(self, core: int, buf: "Buffer", upto: int) -> None:  # hot-path
        """A core consumed the buffer's prefix up to ``upto``.

        Equivalent to ``insert`` on the core's private then shared level,
        with both bodies inlined: this pair runs on every simulated copy
        completion, and the call/attribute overhead of two ``insert``
        frames is measurable there."""
        if upto <= 0:
            return
        buf_id = buf.id
        size = buf.size
        level = self.private[core]
        while True:  # private level, then the shared level if any
            hw = level._hw
            old = hw.pop(buf_id, 0)
            new = old if old >= upto else upto
            if new > size:
                new = size
            hw[buf_id] = new
            if new != old:  # else: pure LRU touch, bookkeeping unchanged
                cap = level.capacity
                level._total += ((new if new < cap else cap)
                                 - (old if old < cap else cap))
                holders = self._holders.get(buf_id)
                if holders is None:
                    self._holders[buf_id] = {level.id: level}  # lint: disable=RC106
                else:
                    holders[level.id] = level
                if level._total > cap:
                    level._evict(self, keep=buf_id)
            shared = self._shared_of_core[core]
            if shared is None or level is shared:
                return
            level = shared

    def record_write(self, core: int, buf: "Buffer", upto: int) -> None:  # hot-path
        """A core wrote the prefix up to ``upto``: peer copies invalidate."""
        writer_private = self.private[core]
        writer_shared = self._shared_of_core[core]
        holders = self._holders.get(buf.id)
        if holders:
            stale = None
            for level in holders.values():
                if level is not writer_private and level is not writer_shared:
                    if stale is None:
                        stale = [level]  # lint: disable=RC106
                    else:
                        stale.append(level)
            if stale is not None:
                for level in stale:
                    level.invalidate(buf, self)
        writer_private.insert(buf, upto, self)
        if writer_shared is not None:
            writer_shared.insert(buf, upto, self)

    def drop(self, buf: "Buffer") -> None:
        """Remove a freed buffer from every cache."""
        for level in list(self._holders.get(buf.id, {}).values()):
            level.invalidate(buf, self)
        self._holders.pop(buf.id, None)

    def flush_all(self) -> None:
        """Cold caches (used between benchmark configurations)."""
        for level in self._all_levels():
            level._hw.clear()
            level._total = 0
        self._holders.clear()

    def _all_levels(self) -> Iterator[CacheLevel]:
        yield from self.private
        yield from self.group.values()
        yield from self.slc.values()
