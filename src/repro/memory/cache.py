"""Cache-residency state.

The simulator tracks buffer residency per cache with **high-water prefix
semantics**: a cache knows the furthest byte offset of each buffer that has
passed through it (``high_water``), and holds the trailing window
``[high_water - capacity, high_water)`` of that prefix. This is deliberately
coarser than a per-line directory, but it prices the access patterns the
algorithms under study actually produce — sequential chunked scans and
re-reads — exactly:

* a pipelined consumer reading chunk ``[a, b)`` behind a producer whose
  writes reached ``high_water >= b`` hits in the producer's cache;
* lock-step readers at the same offset get **no** phantom hits from their
  own progress (their caches' high water equals their own position);
* repeated broadcasts of an unmodified buffer hit in readers' caches
  (the osu benchmark artifact of Fig. 7), while a writer invalidates all
  other copies, forcing re-fetches;
* buffers larger than a cache lose their head by the time a scan finishes
  (the trailing window), so sequential re-reads of oversized buffers miss
  — bounding the Fig. 7 artifact;
* capacity pressure from other buffers evicts whole entries in LRU order.
"""

from __future__ import annotations

import enum
import itertools
from collections import OrderedDict
from typing import Iterator, Optional, TYPE_CHECKING

from ..errors import MemoryModelError
from ..topology.objects import ObjKind, Topology

if TYPE_CHECKING:  # pragma: no cover
    from .address_space import Buffer
    from .model import MachineModel


class CacheKind(enum.Enum):
    PRIVATE = "private"   # per-core L2
    GROUP = "group"       # shared LLC group (Epyc CCX)
    SLC = "slc"           # socket-level system cache (ARM-N1)


class CacheLevel:
    """One cache: an LRU map of buffer-id -> high-water prefix offset."""

    _ids = itertools.count()

    def __init__(self, kind: CacheKind, capacity: int, home_cores: list[int]):
        if capacity <= 0:
            raise MemoryModelError("cache capacity must be positive")
        self.id = next(CacheLevel._ids)
        self.kind = kind
        self.capacity = capacity
        # Cores this cache is "at": its owner for PRIVATE, the LLC group's
        # members for GROUP, the socket's cores for SLC. Used for distance.
        self.home_cores = home_cores
        self._hw: OrderedDict[int, int] = OrderedDict()  # buf_id -> high water
        self._total = 0

    # -- queries -----------------------------------------------------------

    def high_water(self, buf: "Buffer") -> int:
        return self._hw.get(buf.id, 0)

    def footprint(self, buf: "Buffer") -> int:
        return min(self._hw.get(buf.id, 0), self.capacity)

    def hit_bytes(self, buf: "Buffer", offset: int, length: int) -> int:
        """Bytes of ``[offset, offset+length)`` resident here (the trailing
        window of the buffer's prefix)."""
        hw = self._hw.get(buf.id)
        if hw is None or length <= 0:
            return 0
        lo = max(0, hw - self.capacity)
        return max(0, min(offset + length, hw) - max(offset, lo))

    def holds_any(self, buf: "Buffer") -> bool:
        return buf.id in self._hw

    @property
    def used(self) -> int:
        return self._total

    def buffers(self) -> Iterator[int]:
        return iter(self._hw)

    # -- mutation ------------------------------------------------------------

    def insert(self, buf: "Buffer", upto: int, system: "CacheSystem") -> None:
        """Record that the buffer's prefix now reaches ``upto`` here."""
        if upto <= 0:
            return
        old = self._hw.pop(buf.id, 0)
        self._total -= min(old, self.capacity)
        new = min(buf.size, max(old, upto))
        self._hw[buf.id] = new
        self._total += min(new, self.capacity)
        system._holders.setdefault(buf.id, {})[self.id] = self
        self._evict(system, keep=buf.id)

    def invalidate(self, buf: "Buffer", system: "CacheSystem") -> None:
        old = self._hw.pop(buf.id, None)
        if old is not None:
            self._total -= min(old, self.capacity)
            holders = system._holders.get(buf.id)
            if holders is not None:
                holders.pop(self.id, None)

    def _evict(self, system: "CacheSystem", keep: int) -> None:
        while self._total > self.capacity and len(self._hw) > 1:
            victim_id = next(iter(self._hw))
            if victim_id == keep:
                self._hw.move_to_end(victim_id)
                victim_id = next(iter(self._hw))
                if victim_id == keep:  # pragma: no cover - single entry
                    return
            victim_hw = self._hw.pop(victim_id)
            self._total -= min(victim_hw, self.capacity)
            holders = system._holders.get(victim_id)
            if holders is not None:
                holders.pop(self.id, None)


class CacheSystem:
    """All caches of one machine plus the buffer-holders directory."""

    def __init__(self, topo: Topology, model: "MachineModel") -> None:
        self.topo = topo
        self.model = model
        self.private: list[CacheLevel] = [
            CacheLevel(CacheKind.PRIVATE, model.l2_size, [c.index])
            for c in topo.cores
        ]
        self.group: dict[int, CacheLevel] = {}
        if model.llc_size > 0 and topo.has_llc:
            for llc in topo.objects(ObjKind.LLC):
                self.group[llc.index] = CacheLevel(
                    CacheKind.GROUP, model.llc_size,
                    [c.index for c in llc.cores()],
                )
        self.slc: dict[int, CacheLevel] = {}
        if model.slc_size > 0:
            for sock in topo.objects(ObjKind.SOCKET):
                self.slc[sock.index] = CacheLevel(
                    CacheKind.SLC, model.slc_size,
                    [c.index for c in sock.cores()],
                )
        # buf_id -> insertion-ordered {cache_level_id: CacheLevel} of the
        # caches holding some of it (ordered, so tie-breaking among
        # equally-good sources is deterministic across runs).
        self._holders: dict[int, dict[int, CacheLevel]] = {}
        # core -> its shared cache (GROUP on Epycs, SLC on ARM), if any.
        self._shared_of_core: list[Optional[CacheLevel]] = []
        for core in topo.cores:
            shared: Optional[CacheLevel] = None
            if self.group:
                llc = topo.llc_of_core(core.index)
                if llc is not None:
                    shared = self.group[llc.index]
            elif self.slc:
                sock = topo.socket_of_core(core.index)
                if sock is not None:
                    shared = self.slc[sock.index]
            self._shared_of_core.append(shared)

    # -- lookup ---------------------------------------------------------------

    def shared_cache_of(self, core: int) -> Optional[CacheLevel]:
        return self._shared_of_core[core]

    def holders_of(self, buf: "Buffer"):
        return self._holders.get(buf.id, {}).values()

    # -- read/write accounting ---------------------------------------------

    def record_read(self, core: int, buf: "Buffer", upto: int) -> None:
        """A core consumed the buffer's prefix up to ``upto``."""
        self.private[core].insert(buf, upto, self)
        shared = self._shared_of_core[core]
        if shared is not None:
            shared.insert(buf, upto, self)

    def record_write(self, core: int, buf: "Buffer", upto: int) -> None:
        """A core wrote the prefix up to ``upto``: peer copies invalidate."""
        writer_private = self.private[core]
        writer_shared = self._shared_of_core[core]
        for level in list(self._holders.get(buf.id, {}).values()):
            if level is not writer_private and level is not writer_shared:
                level.invalidate(buf, self)
        writer_private.insert(buf, upto, self)
        if writer_shared is not None:
            writer_shared.insert(buf, upto, self)

    def drop(self, buf: "Buffer") -> None:
        """Remove a freed buffer from every cache."""
        for level in list(self._holders.get(buf.id, {}).values()):
            level.invalidate(buf, self)
        self._holders.pop(buf.id, None)

    def flush_all(self) -> None:
        """Cold caches (used between benchmark configurations)."""
        for level in self._all_levels():
            level._hw.clear()
            level._total = 0
        self._holders.clear()

    def _all_levels(self) -> Iterator[CacheLevel]:
        yield from self.private
        yield from self.group.values()
        yield from self.slc.values()
