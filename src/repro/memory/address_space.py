"""Per-process address spaces and buffers.

Each simulated MPI process owns an :class:`AddressSpace`; buffers allocated
from it get a NUMA home per the first-touch policy (the NUMA node of the
core the process is pinned to). When the node runs with a real data plane
(``data_movement=True``), every buffer is backed by a numpy byte array and
copies/reductions actually move data, making collectives verifiable
end-to-end.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from ..compat import require_numpy
from ..errors import MemoryModelError

if TYPE_CHECKING:
    import numpy as np


class Buffer:
    """A contiguous allocation with a NUMA home and optional real storage."""

    _ids = itertools.count()

    __slots__ = ("id", "name", "size", "owner_rank", "owner_core",
                 "home_numa", "data", "shared")

    def __init__(
        self,
        name: str,
        size: int,
        owner_rank: int,
        owner_core: int,
        home_numa: int,
        data: Optional[np.ndarray],
        shared: bool = False,
    ) -> None:
        if size <= 0:
            raise MemoryModelError(f"buffer size must be positive, got {size}")
        self.id = next(Buffer._ids)
        self.name = name
        self.size = size
        self.owner_rank = owner_rank
        self.owner_core = owner_core
        self.home_numa = home_numa
        self.data = data
        # Shared segments (CICO mailboxes, control structs) are mapped by
        # peers without XPMEM; plain application buffers need an attachment.
        self.shared = shared

    def view(self, offset: int = 0, length: int | None = None) -> "BufView":
        return BufView(self, offset, self.size - offset if length is None else length)

    def whole(self) -> "BufView":
        return BufView(self, 0, self.size)

    def fill(self, value: int) -> None:
        if self.data is not None:
            self.data[:] = value

    def __repr__(self) -> str:
        return (f"<Buffer #{self.id} {self.name!r} size={self.size} "
                f"rank={self.owner_rank} numa={self.home_numa}>")


@dataclass(frozen=True)
class BufView:
    """A byte range of a buffer."""

    buf: Buffer
    offset: int
    length: int

    def __post_init__(self) -> None:
        if self.offset < 0 or self.length < 0:
            raise MemoryModelError("negative view offset/length")
        if self.offset + self.length > self.buf.size:
            raise MemoryModelError(
                f"view [{self.offset}, {self.offset + self.length}) exceeds "
                f"buffer {self.buf.name!r} of size {self.buf.size}"
            )

    def sub(self, offset: int, length: int) -> "BufView":  # hot-path
        if offset < 0 or length < 0 or offset + length > self.length:
            raise MemoryModelError(
                f"sub-view [{offset}, {offset + length}) escapes a view of "  # lint: disable=RC106
                f"length {self.length}"
            )
        # Bypass the dataclass constructor: the bounds check above already
        # implies __post_init__'s invariants (our own offset/length were
        # validated when *this* view was built), and pipelined collectives
        # mint sub-views on every chunk.
        view = object.__new__(BufView)
        object.__setattr__(view, "buf", self.buf)
        object.__setattr__(view, "offset", self.offset + offset)
        object.__setattr__(view, "length", length)
        return view

    def array(self) -> Optional[np.ndarray]:
        if self.buf.data is None:
            return None
        return self.buf.data[self.offset:self.offset + self.length]

    def as_dtype(self, dtype) -> Optional[np.ndarray]:
        arr = self.array()
        if arr is None:
            return None
        return arr.view(dtype)

    def __repr__(self) -> str:
        return f"<view {self.buf.name!r}[{self.offset}:{self.offset + self.length}]>"


class AddressSpace:
    """Allocation arena of one simulated process."""

    def __init__(self, rank: int, core: int, home_numa: int,
                 data_movement: bool = True) -> None:
        self.rank = rank
        self.core = core
        self.home_numa = home_numa
        self.data_movement = data_movement
        self.buffers: list[Buffer] = []

    def alloc(self, name: str, size: int, *, shared: bool = False,
              home_numa: int | None = None) -> Buffer:
        """Allocate ``size`` bytes; first-touch places it on our NUMA node."""
        if self.data_movement:
            np = require_numpy("data_movement=True (value-backed buffers)")
            data = np.zeros(size, dtype=np.uint8)
        else:
            data = None
        buf = Buffer(
            name=f"r{self.rank}:{name}",
            size=size,
            owner_rank=self.rank,
            owner_core=self.core,
            home_numa=self.home_numa if home_numa is None else home_numa,
            data=data,
            shared=shared,
        )
        self.buffers.append(buf)
        return buf

    def free(self, buf: Buffer) -> None:
        try:
            self.buffers.remove(buf)
        except ValueError:
            raise MemoryModelError(f"{buf!r} not owned by rank {self.rank}") from None
