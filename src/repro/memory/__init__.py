"""Memory-system substrate: cost model, cache state, address spaces.

This package prices every data movement the simulator performs:

* :mod:`repro.memory.model` — per-machine latency/bandwidth parameters by
  topological distance, cache capacities, and kernel-mechanism overheads
  (XPMEM page faults, CMA/KNEM syscalls, registration-cache lookups).
* :mod:`repro.memory.cache` — cache-residency state (private L2, shared LLC
  groups or a socket-level SLC) that reproduces the paper's caching
  artifacts (Fig. 7) and implicit flag-propagation assist (Fig. 10).
* :mod:`repro.memory.address_space` — per-process buffers with NUMA homes
  and an optional real numpy data plane.
"""

from .model import MachineModel, MODELS, model_for
from .cache import CacheLevel, CacheSystem, CacheKind
from .address_space import AddressSpace, Buffer, BufView

__all__ = [
    "MachineModel",
    "MODELS",
    "model_for",
    "CacheLevel",
    "CacheSystem",
    "CacheKind",
    "AddressSpace",
    "Buffer",
    "BufView",
]
