"""Per-machine performance parameters.

Absolute values are *plausible* numbers for the Table I machines, chosen to
reproduce the relationships the paper itself measures in its motivational
experiments (SSIII): the distance-class ordering of Fig. 1a, the congestion
behaviour of Fig. 1b, the single-copy mechanism ordering of Fig. 3, and the
atomics collapse of Fig. 4. They are not fitted to the evaluation figures.

All times are seconds, all bandwidths bytes/second.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..errors import MemoryModelError
from ..topology.distance import Distance
from ..topology.objects import Topology

CACHE_LINE = 64
PAGE_SIZE = 4096


@dataclass(frozen=True)
class MachineModel:
    """Every tunable cost the simulator charges, for one machine."""

    name: str

    # -- point-to-point path characteristics, by distance class ----------
    # Startup latency of a transfer whose source is at the given distance.
    lat: dict[Distance, float] = field(default_factory=dict)
    # Single-stream bandwidth of such a transfer (uncontended).
    bw: dict[Distance, float] = field(default_factory=dict)

    # -- cache geometry ----------------------------------------------------
    l2_size: int = 512 * 1024          # private per-core
    llc_size: int = 8 * 1024 * 1024    # per LLC group (Epyc CCX); 0 if none
    slc_size: int = 0                  # per-socket system-level cache (ARM)

    # -- shared contention resources ----------------------------------------
    numa_mem_bw: float = 30e9          # DRAM channels of one NUMA node
    llc_port_bw: float = 60e9          # read port of one LLC group
    socket_fabric_bw: float = 80e9     # intra-socket interconnect
    inter_socket_bw: float = 35e9      # socket-to-socket link
    slc_bw: float = 0.0                # aggregate SLC bandwidth (ARM)

    # -- line-granularity (flag) transactions -------------------------------
    # Time one cache-line fetch occupies its source point; fan-in of N
    # readers on one line serializes at this rate.
    line_occupancy: float = 8e-9
    # Local store / flag update cost for the single writer.
    store_cost: float = 10e-9
    # Polling loop resolution when waiting on a flag.
    poll_delay: float = 20e-9
    # Base execution cost of one atomic RMW (on top of ownership transfer).
    atomic_base: float = 25e-9
    # Per-contender inflation of an atomic's ownership-transfer latency
    # (concurrent RMWs interfere; per-op cost grows with contenders).
    atomic_contention: float = 0.45

    # -- kernel mechanisms --------------------------------------------------
    syscall_cost: float = 0.8e-6
    page_fault_cost: float = 0.45e-6   # per 4 KiB page on first XPMEM touch
    regcache_lookup_cost: float = 0.15e-6
    xpmem_detach_cost: float = 0.6e-6
    # Additive per-operation kernel-lock delay: alpha * concurrent users
    # (Chakraborty et al. [28]: CMA/KNEM contend on mm locks; CMA worse).
    cma_lock_alpha: float = 3.0e-6
    knem_lock_alpha: float = 0.8e-6
    # Kernel-assisted copy engines run below the user-space copy rate.
    cma_bw_factor: float = 0.55
    knem_bw_factor: float = 0.85

    # -- compute -------------------------------------------------------------
    reduce_bw: float = 9e9             # bytes/s a core reduces (load+op+store)
    copy_issue_cost: float = 30e-9     # fixed per-copy software overhead

    def __post_init__(self) -> None:
        for dist in Distance:
            if dist not in self.lat or dist not in self.bw:
                raise MemoryModelError(
                    f"model {self.name!r} missing parameters for {dist.label}"
                )

    def with_overrides(self, **kw) -> "MachineModel":
        """A copy of this model with some fields replaced."""
        return replace(self, **kw)


def _epyc_common(name: str) -> MachineModel:
    return MachineModel(
        name=name,
        lat={
            Distance.SELF: 15e-9,
            Distance.CACHE_LOCAL: 45e-9,
            Distance.INTRA_NUMA: 105e-9,
            Distance.CROSS_NUMA: 140e-9,
            Distance.CROSS_SOCKET: 260e-9,
        },
        bw={
            Distance.SELF: 50e9,
            Distance.CACHE_LOCAL: 16e9,
            Distance.INTRA_NUMA: 12e9,
            Distance.CROSS_NUMA: 8.5e9,
            Distance.CROSS_SOCKET: 5e9,
        },
        l2_size=512 * 1024,
        llc_size=8 * 1024 * 1024,
        slc_size=0,
        numa_mem_bw=32e9,
        llc_port_bw=70e9,
        socket_fabric_bw=90e9,
        inter_socket_bw=38e9,
        # One cross-core line transaction served out of a core's caches
        # every ~35 ns; LLC-group peers bypass this via their shared L3.
        line_occupancy=35e-9,
    )


EPYC_1P_MODEL = _epyc_common("Epyc-1P")
EPYC_2P_MODEL = _epyc_common("Epyc-2P")

ARM_N1_MODEL = MachineModel(
    name="ARM-N1",
    lat={
        Distance.SELF: 12e-9,
        # No shared LLC: "cache-local" never arises from topology, but a
        # value is required for SLC-resident data read within a socket.
        Distance.CACHE_LOCAL: 70e-9,
        Distance.INTRA_NUMA: 110e-9,
        Distance.CROSS_NUMA: 118e-9,   # nearly identical to intra (Fig. 1a)
        Distance.CROSS_SOCKET: 350e-9,
    },
    bw={
        Distance.SELF: 60e9,
        Distance.CACHE_LOCAL: 15e9,
        Distance.INTRA_NUMA: 11e9,
        Distance.CROSS_NUMA: 10.5e9,
        Distance.CROSS_SOCKET: 4.5e9,
    },
    l2_size=1024 * 1024,
    llc_size=0,
    slc_size=32 * 1024 * 1024,
    numa_mem_bw=40e9,
    llc_port_bw=0.0,
    socket_fabric_bw=250e9,   # CMN-600 mesh
    inter_socket_bw=32e9,
    slc_bw=400e9,             # aggregate SLC slice bandwidth
    # Home-node snoop occupancy on the CMN-600 mesh: a contended line's
    # home serves one requester every ~45 ns. With no LLC-group shortcut,
    # every reader queues here — SSV-D1's flat-tree collapse on this
    # machine.
    line_occupancy=45e-9,
    atomic_base=30e-9,
)


MODELS: dict[str, MachineModel] = {
    "epyc-1p": EPYC_1P_MODEL,
    "epyc-2p": EPYC_2P_MODEL,
    "arm-n1": ARM_N1_MODEL,
}


def model_for(topo: Topology) -> MachineModel:
    """The parameter set matching a Table I topology, by codename."""
    key = topo.name.lower()
    if key in MODELS:
        return MODELS[key]
    # Custom topologies default to Epyc-like parameters, adjusted for the
    # presence/absence of an LLC level.
    base = _epyc_common(topo.name)
    if not topo.has_llc:
        base = base.with_overrides(
            llc_size=0, llc_port_bw=0.0, slc_size=32 * 1024 * 1024, slc_bw=180e9
        )
    return base
