"""The simulated multicore node.

A :class:`Node` binds a topology, its machine model, the cache system, the
contention resources and one event engine, and implements the pricing
protocol the engine delegates to. It is the root object every simulation
starts from::

    node = Node(get_system("epyc-2p"))
    space = node.new_address_space(rank=0, core=0)
    ...
    node.engine.spawn(rank_program, core=0)
    node.engine.run()

Pricing hot paths are memoized (see docs/performance.md): the static part
of a copy/reduce price — source classification, route, latency terms —
is cached keyed by the operand spans plus a *cache-state signature* of the
source buffer, while the dynamic part (bandwidth shares, which depend on
``Resource.active`` at call time) is recomputed on every call. A memo hit
therefore re-evaluates exactly the same floating-point expression the cold
path would, which is what keeps simulated latencies bit-identical (pinned
by tests/test_golden_latency.py).
"""

from __future__ import annotations

import heapq
from typing import Callable, Optional

from .errors import ConfigError, SimulationError
from .memory.address_space import AddressSpace, Buffer, BufView
from .memory.cache import CacheKind, CacheLevel, CacheSystem
from .memory.model import MachineModel, PAGE_SIZE, model_for
from .options import UNSET, RunOptions, resolve_options
from .sim import primitives as P
from .sim.engine import Engine
from .sim.resources import Resource, ResourcePool
from .sim.syncobj import Line
from .topology.distance import Distance, classify_distance
from .topology.objects import ObjKind, Topology

_NO_RESOURCES: list = []


class Node:
    """Simulated machine + pricing rules.

    Run behavior is configured through one ``options=RunOptions(...)``
    argument; the historical per-concern keywords (``data_movement=``,
    ``record_copies=``, ``observe=``, ``check=``) still work but emit a
    single ``DeprecationWarning`` per call (docs/api.md).
    """

    # Test hook: class-level switch that disables the pricing memo (every
    # plan_* call recomputes from scratch). The equivalence tests flip it
    # to prove memoized and cold prices are bit-identical.
    _pricing_memo_enabled = True
    # Deterministic overflow policy: a full memo evicts its oldest entry
    # (insertion-order LRU via dict ordering). Eviction only costs
    # recomputation — prices never depend on the memo — but popping one
    # entry instead of clearing keeps long sweeps from periodically
    # cold-restarting the whole memo.
    _MEMO_CAP = 32768

    def __init__(
        self,
        topo: Topology,
        model: MachineModel | None = None,
        options: RunOptions | None = None,
        *,
        data_movement=UNSET,
        record_copies=UNSET,
        observe=UNSET,
        check=UNSET,
    ) -> None:
        options = resolve_options(
            options, caller="Node", data_movement=data_movement,
            record_copies=record_copies, observe=observe, check=check)
        self.topo = topo
        self.model = model if model is not None else model_for(topo)
        self.caches = CacheSystem(topo, self.model)
        self.resources = ResourcePool(topo, self.model)
        self.options = options
        self.data_movement = options.data_movement
        if options.engine == "array":
            if options.instrumented:
                raise ConfigError(
                    'engine="array" is incompatible with observe/check/'
                    'record_copies: instrumentation hooks are per-event, '
                    'which is exactly what array mode elides — run the '
                    'event engine for instrumented runs (docs/performance.md)'
                )
            from .compat import require_numpy
            require_numpy('RunOptions(engine="array")')
            from .sim.array_engine import ArrayEngine
            self.engine: Engine = ArrayEngine(self)
        else:
            self.engine = Engine(self, record_copies=options.record_copies,
                                 observe=options.observe, check=options.check)
        # Core-pair distance cache. Distance is a pure function of the
        # topology, so the cache lives *on the topology object* and is
        # shared by every Node built over it (the exec worker pool keeps
        # one Topology per system alive across requests).
        pair_cache = getattr(topo, "_pair_dist_cache", None)
        if pair_cache is None:
            pair_cache = {}
            topo._pair_dist_cache = pair_cache
        self._dist_cache: dict[tuple[int, int], Distance] = pair_cache
        # Core index -> NUMA/socket indices, precomputed for pricing.
        self._numa_of = [
            t.index if t is not None else 0
            for t in (topo.numa_of_core(c.index) for c in topo.cores)
        ]
        self._sock_of = [
            t.index if t is not None else 0
            for t in (topo.socket_of_core(c.index) for c in topo.cores)
        ]
        self._numa_sock = {
            numa.index: (numa.ancestor(ObjKind.SOCKET).index
                         if numa.ancestor(ObjKind.SOCKET) else 0)
            for numa in topo.objects(ObjKind.NUMA)
        }
        self._numa_first_core = {
            numa.index: numa.cores()[0].index
            for numa in topo.objects(ObjKind.NUMA)
        }
        # Core -> LLC index (None without an LLC level), precomputed so the
        # line-fetch path never walks the topology tree.
        self._llc_index: list[Optional[int]] = [
            (llc.index if llc is not None else None)
            for llc in (topo.llc_of_core(c.index) for c in topo.cores)
        ]
        # Pricing memos; see plan_copy_span for the key/validity contract.
        self._copy_memo: dict[tuple, tuple] = {}
        self._reduce_memo: dict[tuple, tuple] = {}
        self._write_res_memo: dict[tuple[int, int], list[Resource]] = {}
        # Node-global XPMEM exposure registry (created lazily to keep the
        # import graph acyclic).
        from .shmem.xpmem import XpmemService
        self.xpmem = XpmemService(self)
        # Line-transaction horizon per home core: every cache-line fetch
        # or atomic that must be served out of one core's caches queues at
        # that core's port, whether or not the requests target the same
        # line. This is what makes wide flag fan-ins serialize (Fig. 10's
        # "separated" layout, the ARM-N1 flat-tree collapse).
        self._line_port: dict[int, float] = {}
        # Array-mode port accounting: processes are priced at skewed
        # virtual times, so the scalar horizon above would make a lagging
        # fetch queue behind bookings an ahead-running process stamped in
        # its future. arr_line_read instead books (end, start) occupancy
        # intervals per home core and a fetch chains only through
        # bookings that actually overlap it (expiry bounded by the
        # dispatch epoch, like Resource.arr_ivals).
        self._arr_port: dict[int, list] = {}

    @property
    def obs(self):
        """The engine's observer (:data:`repro.obs.NULL_OBSERVER` unless
        constructed with ``observe=...``)."""
        return self.engine.obs

    @property
    def check_report(self):
        """Sanitizer findings so far (:class:`repro.check.CheckReport`;
        empty unless constructed with ``check='race'`` or ``'full'``)."""
        from .check.report import CheckReport
        checker = self.engine.checker
        return checker.report() if checker is not None else CheckReport()

    # -- setup helpers -----------------------------------------------------

    def new_address_space(self, rank: int, core: int) -> AddressSpace:
        numa = self.topo.numa_of_core(core)
        return AddressSpace(
            rank, core, numa.index if numa else 0,
            data_movement=self.data_movement,
        )

    def distance(self, core_a: int, core_b: int) -> Distance:  # hot-path
        key = (core_a, core_b)
        dist = self._dist_cache.get(key)
        if dist is None:
            dist = classify_distance(self.topo, core_a, core_b)
            self._dist_cache[key] = dist
            self._dist_cache[(core_b, core_a)] = dist
        return dist

    def numa_distance(self, core: int, numa_index: int) -> Distance:
        """Distance of a core to a NUMA node's memory."""
        if self._numa_of[core] == numa_index:
            return Distance.INTRA_NUMA
        if self._sock_of[core] == self._numa_sock[numa_index]:
            return Distance.CROSS_NUMA
        return Distance.CROSS_SOCKET

    # -- source location ---------------------------------------------------

    def _cache_source(
        self, core: int, view: BufView
    ) -> tuple[Optional[CacheLevel], int]:
        """Best cache source for reading ``view`` by ``core``."""
        return self._cache_source_span(core, view.buf, view.offset,
                                       view.length)

    def _cache_source_span(
        self, core: int, buf: Buffer, off: int, length: int
    ) -> tuple[Optional[CacheLevel], int]:
        """Best cache source for reading ``buf[off:off+length]`` by ``core``.

        Returns (cache_level, hit_bytes); (None, 0) when no cache holds any
        of the range (DRAM at the buffer's home is then the source). The
        nearest cache wins; a farther one only wins by covering strictly
        more of the range.
        """
        private = self.caches.private[core]
        best: Optional[CacheLevel] = None
        best_dist: Optional[Distance] = None
        best_hit = 0
        hit = private.hit_bytes(buf, off, length)
        if hit > 0:
            best, best_dist, best_hit = private, Distance.SELF, hit
        for level in self.caches.holders_of(buf):
            if level is private:
                continue
            hit = level.hit_bytes(buf, off, length)
            if hit <= 0:
                continue
            if core in level.home_cores:
                dist = (Distance.SELF if level.kind is CacheKind.PRIVATE
                        else Distance.CACHE_LOCAL)
            else:
                dist = self.distance(core, level.home_cores[0])
            better = (
                best is None
                or hit > best_hit
                or (hit == best_hit and dist < best_dist)
            )
            # Prefer the nearest source unless a farther one covers more.
            if best is not None and dist > best_dist and hit <= best_hit:
                better = False
            if better:
                best, best_dist, best_hit = level, dist, hit
                if best_hit >= length and best_dist <= Distance.CACHE_LOCAL:
                    # A full-coverage local source cannot be beaten.
                    break
        return best, best_hit

    def _source_route(
        self, core: int, level: Optional[CacheLevel], buf
    ) -> tuple[Distance, list[Resource]]:
        """Distance class + bottleneck resources for reading from a source."""
        if level is None:
            # DRAM at the buffer's home NUMA node.
            numa = buf.home_numa
            dist = self.numa_distance(core, numa)
            route = [self.resources.dram[numa]]
            src_sock = self._numa_sock[numa]
        else:
            if level is self.caches.private[core]:
                return Distance.SELF, []
            src_core = level.home_cores[0]
            if core in level.home_cores:
                dist = Distance.CACHE_LOCAL
            else:
                dist = self.distance(core, src_core)
            route = []
            llc_index = self._llc_index[src_core]
            if llc_index is not None and llc_index in self.resources.llc_port:
                route.append(self.resources.llc_port[llc_index])
            elif self.resources.slc:
                route.append(self.resources.slc[self._sock_of[src_core]])
            else:
                route.append(self.resources.dram[self._numa_of[src_core]])
            if dist >= Distance.INTRA_NUMA:
                # Cache-to-cache transfers that leave the LLC group ride
                # the socket's data fabric (cross-CCX transport on Zen is
                # fabric-limited, but does not consume DRAM channels).
                fab = self.resources.fabric[self._sock_of[src_core]]
                if fab not in route:
                    route.append(fab)
            src_sock = self._sock_of[src_core]
        if dist >= Distance.CROSS_NUMA:
            route.append(self.resources.fabric[src_sock])
        if dist is Distance.CROSS_SOCKET:
            route.append(self.resources.xlink)
        return dist, route

    def _read_price(
        self, core: int, view: BufView, bw_factor: float = 1.0
    ) -> tuple[float, list[Resource]]:
        """Latency + transfer time to read ``view`` by ``core`` now.

        Cold-path reference implementation; the memoized spans in
        :meth:`plan_copy_span` / :meth:`plan_reduce` evaluate the identical
        expression from cached static terms.
        """
        terms = self._read_terms(core, view.buf, view.offset, view.length,
                                 bw_factor)
        duration = self._eval_read(terms)
        return duration, list(terms[8])

    # A read price decomposes into static terms (valid while the source
    # buffer's cache-state signature holds) and a dynamic bandwidth-share
    # evaluation. Term tuple layout:
    #   (lat_term, hit_bytes, bw_cap, route, miss_bytes,
    #    lat2_term, bw2_cap, route2, resources)
    # route/route2 are tuples of Resources; route2 is None when the miss
    # remainder (if any) is served by the primary route; resources is the
    # deduplicated union in the original append order.

    def _read_terms(self, core: int, buf: Buffer, off: int, length: int,
                    bw_factor: float) -> tuple:
        model = self.model
        level, hit_bytes = self._cache_source_span(core, buf, off, length)
        dist, route = self._source_route(core, level, buf)
        lat_term = model.lat[dist] + model.copy_issue_cost
        bw_cap = model.bw[dist] * bw_factor
        miss_bytes = length - hit_bytes
        resources = list(route)
        if miss_bytes > 0 and level is not None:
            # Remainder comes from the buffer's DRAM home.
            d2, route2 = self._source_route(core, None, buf)
            lat2_term = model.lat[d2] * 0.1
            bw2_cap = model.bw[d2] * bw_factor
            resources.extend(r for r in route2 if r not in resources)
            route2 = tuple(route2)
        else:
            lat2_term = 0.0
            bw2_cap = 0.0
            route2 = None
        return (lat_term, hit_bytes, bw_cap, tuple(route), miss_bytes,
                lat2_term, bw2_cap, route2, resources)

    def _eval_read(self, terms: tuple) -> float:  # hot-path
        """Dynamic part of a read price: bandwidth shares at call time.

        Mirrors the historical expression exactly —
        ``(lat + issue) + hit/eff [+ (lat2*0.1 + miss/bw2) | + miss/eff]``
        — including its grouping, so memo hits are bit-identical to cold
        evaluations.
        """
        (lat_term, hit_bytes, bw_cap, route, miss_bytes,
         lat2_term, bw2_cap, route2, _) = terms
        eff_bw = bw_cap
        for r in route:
            share = r.bw / (r.active + 1)
            if share < eff_bw:
                eff_bw = share
        duration = lat_term + hit_bytes / eff_bw
        if miss_bytes > 0:
            if route2 is not None:
                bw2 = bw2_cap
                for r in route2:
                    share = r.bw / (r.active + 1)
                    if share < bw2:
                        bw2 = share
                duration = duration + (lat2_term + miss_bytes / bw2)
            else:
                duration = duration + miss_bytes / eff_bw
        return duration

    def _write_resources(self, core: int, view: BufView) -> list[Resource]:
        """Big destinations spill past the caches to their home DRAM."""
        return self._write_resources_for(core, view.buf)

    def _write_resources_for(self, core: int, buf: Buffer) -> list[Resource]:
        # Depends only on static geometry (buffer size/home, cache
        # capacities), so the memo needs no validity signature.
        key = (core, buf.id)
        cached = self._write_res_memo.get(key)
        if cached is not None:
            return cached
        shared = self.caches.shared_cache_of(core)
        limit = shared.capacity if shared is not None else self.model.l2_size
        if buf.size > limit:
            res = [self.resources.dram[buf.home_numa]]
        else:
            res = _NO_RESOURCES
        if len(self._write_res_memo) >= self._MEMO_CAP:
            del self._write_res_memo[next(iter(self._write_res_memo))]
        self._write_res_memo[key] = res
        return res

    # -- engine pricing protocol ------------------------------------------

    @property
    def store_cost(self) -> float:
        return self.model.store_cost

    def plan_copy(
        self, core: int, prim: P.Copy, now: float
    ) -> tuple[float, list[Resource], Optional[Callable[[], None]]]:
        src, dst = prim.src, prim.dst
        nbytes = src.length if src.length < dst.length else dst.length
        return self.plan_copy_span(core, src.buf, src.offset, src.length,
                                   dst.buf, dst.offset, nbytes,
                                   prim.bw_factor)

    def plan_copy_span(  # hot-path
        self, core: int, src_buf: Buffer, src_off: int, src_len: int,
        dst_buf: Buffer, dst_off: int, nbytes: int, bw_factor: float,
    ) -> tuple[float, list[Resource], Optional[Callable[[], None]]]:
        """Price copying ``nbytes`` from ``src_buf[src_off:...]`` to
        ``dst_buf[dst_off:...]``.

        ``src_len`` is the *priced* source extent and ``nbytes`` the amount
        recorded/moved — kept separate because :class:`~repro.sim.
        primitives.Copy` has always priced the source view's full length
        while recording ``min(src, dst)``.

        The static terms come from :meth:`copy_terms_span` (memoized);
        only the bandwidth-share evaluation happens here. Returns the
        cached resource list by reference — callers must not mutate it.
        """
        entry = self.copy_terms_span(core, src_buf, src_off, src_len,
                                     dst_buf, dst_off, nbytes, bw_factor)
        if entry is None:
            return 0.0, _NO_RESOURCES, None
        terms, resources, complete = entry
        return self._eval_read(terms), resources, complete

    def copy_terms_span(  # hot-path
        self, core: int, src_buf: Buffer, src_off: int, src_len: int,
        dst_buf: Buffer, dst_off: int, nbytes: int, bw_factor: float,
    ) -> Optional[tuple[tuple, list[Resource],
                        Optional[Callable[[], None]]]]:
        """Static copy-pricing entry: ``(terms, resources, complete)``
        without the dynamic bandwidth-share evaluation, or ``None`` for a
        zero-byte copy. This is the array engine's accumulation hook —
        it collects term rows here and prices whole runs in one
        vectorized sweep (:mod:`repro.sim.array_engine`).

        Memoized: the static terms are keyed by the span arguments *plus*
        the span's selected source — the ``(level, hit_bytes)`` winner of
        :meth:`_cache_source_span`. Every other input to the terms is
        static geometry, so the winner pins the price exactly; and unlike
        the full holder signature (which drags directory insertion order
        and eviction trails into the key), the winner *recurs* across
        benchmark iterations, which is what keeps steady-state runs
        hitting. The winner is part of the key (not a guard on a single
        entry) because one span is priced under a handful of recurring
        states per iteration — keying by state keeps them all resident.
        """
        if nbytes <= 0:
            return None
        if self._pricing_memo_enabled:
            memo = self._copy_memo
            level, hit = self._cache_source_span(core, src_buf, src_off,
                                                 src_len)
            key = (core, src_buf.id, src_off, src_len,
                   dst_buf.id, dst_off, nbytes, bw_factor,
                   level.id if level is not None else -1, hit)
            entry = memo.get(key)
            if entry is not None:
                return entry
        terms = self._read_terms(core, src_buf, src_off, src_len, bw_factor)
        resources = terms[8]
        for res in self._write_resources_for(core, dst_buf):
            if res not in resources:
                resources.append(res)

        caches = self.caches
        src_end = src_off + nbytes
        dst_end = dst_off + nbytes
        data_movement = self.data_movement

        def complete() -> None:
            caches.record_read(core, src_buf, src_end)
            caches.record_write(core, dst_buf, dst_end)
            if data_movement and src_buf.data is not None \
                    and dst_buf.data is not None:
                dst_buf.data[dst_off:dst_end] = \
                    src_buf.data[src_off:src_end]

        entry = (terms, resources, complete)
        if self._pricing_memo_enabled:
            if len(memo) >= self._MEMO_CAP:
                del memo[next(iter(memo))]
            memo[key] = entry
        return entry

    def plan_reduce(  # hot-path
        self, core: int, prim: P.Reduce, now: float
    ) -> tuple[float, list[Resource], Optional[Callable[[], None]]]:
        entry = self.reduce_terms(core, prim)
        if entry is None:
            return 0.0, _NO_RESOURCES, None
        term_list, reduce_term, resources, complete = entry
        duration = 0.0
        for terms in term_list:
            duration += self._eval_read(terms)
        duration += reduce_term
        return duration, resources, complete

    def reduce_terms(  # hot-path
        self, core: int, prim: P.Reduce
    ) -> Optional[tuple[list, float, list[Resource],
                        Optional[Callable[[], None]]]]:
        """Static reduce-pricing entry:
        ``(term_list, reduce_term, resources, complete)`` without the
        dynamic bandwidth-share evaluation (``None`` for an empty
        reduce); the array engine's accumulation hook, memoized like
        :meth:`copy_terms_span`."""
        nbytes = prim.dst.length
        if nbytes <= 0 or not prim.srcs:
            return None
        srcs = prim.srcs
        dst = prim.dst
        if self._pricing_memo_enabled:
            memo = self._reduce_memo
            csrc = self._cache_source_span
            parts = []  # lint: disable=RC106 - the memo key being built
            for s in srcs:
                level, hit = csrc(core, s.buf, s.offset, s.length)
                parts.append((s.buf.id, s.offset, s.length,
                              level.id if level is not None else -1, hit))
            key = (core, tuple(parts),
                   dst.buf.id, dst.offset, nbytes,
                   prim.op, prim.dtype, prim.accumulate)
            entry = memo.get(key)
            if entry is not None:
                return entry
        # Memo-miss path: rebuilt terms are cached below.
        term_list = []  # lint: disable=RC106
        resources: list[Resource] = []  # lint: disable=RC106
        for src in srcs:
            terms = self._read_terms(core, src.buf, src.offset, src.length,
                                     1.0)
            term_list.append(terms)
            for r in terms[8]:
                if r not in resources:
                    resources.append(r)
        # ALU + store cost; the operand loads (priced above) overlap with
        # the arithmetic on real hardware, so this term is charged once,
        # not per source.
        reduce_term = nbytes / self.model.reduce_bw
        for res in self._write_resources_for(core, dst.buf):
            if res not in resources:
                resources.append(res)

        caches = self.caches
        data_movement = self.data_movement

        def complete() -> None:
            for src in srcs:
                caches.record_read(core, src.buf, src.offset + src.length)
            caches.record_write(core, dst.buf, dst.offset + nbytes)
            if data_movement and dst.buf.data is not None:
                Node._apply_reduce(prim)

        entry = (term_list, reduce_term, resources, complete)
        if self._pricing_memo_enabled:
            if len(memo) >= self._MEMO_CAP:
                del memo[next(iter(memo))]
            memo[key] = entry
        return entry

    def commit_copy_span(self, core: int, src: "BufView", dst: "BufView",
                         off: int, nbytes: int) -> None:
        """The post-pricing effects of copying the ``[off, off+nbytes)``
        slice of full-payload views — exactly what the ``complete``
        closure of :meth:`copy_terms_span` does (cache-ledger records and
        optional data movement), without building pricing terms. The
        array engine's bulk-commit hook: a :class:`~repro.sim.primitives.
        ChunkRun` sweep prices one chunk shape and commits the whole
        licensed span through here."""
        if nbytes <= 0:
            return
        src_buf, dst_buf = src.buf, dst.buf
        src_end = src.offset + off + nbytes
        dst_end = dst.offset + off + nbytes
        self.caches.record_read(core, src_buf, src_end)
        self.caches.record_write(core, dst_buf, dst_end)
        if self.data_movement and src_buf.data is not None \
                and dst_buf.data is not None:
            dst_buf.data[dst_end - nbytes:dst_end] = \
                src_buf.data[src_end - nbytes:src_end]

    def commit_reduce_span(self, core: int, srcs, dst: "BufView",
                           off: int, nbytes: int, op=None,
                           dtype=None) -> None:
        """:meth:`commit_copy_span` for a direct reduction: the
        ``complete`` effects of :meth:`reduce_terms` over the
        ``[off, off+nbytes)`` slice of full-payload operand views."""
        if nbytes <= 0:
            return
        caches = self.caches
        end = off + nbytes
        for s in srcs:
            caches.record_read(core, s.buf, s.offset + end)
        caches.record_write(core, dst.buf, dst.offset + end)
        if self.data_movement and dst.buf.data is not None:
            Node._apply_reduce(P.Reduce(
                srcs=tuple(s.sub(off, nbytes) for s in srcs),
                dst=dst.sub(off, nbytes), op=op, dtype=dtype))

    @staticmethod
    def _apply_reduce(prim: P.Reduce) -> None:
        from .compat import require_numpy
        np = require_numpy("value-accurate reduction (data_movement)")
        dtype = prim.dtype if prim.dtype is not None else np.float32
        op = prim.op if prim.op is not None else np.add
        dst = prim.dst.as_dtype(dtype)
        arrays = [s.as_dtype(dtype) for s in prim.srcs]
        if any(a is None for a in arrays) or dst is None:
            return
        if prim.accumulate:
            acc = dst.copy()
        else:
            acc = arrays[0].copy()
            arrays = arrays[1:]
        for arr in arrays:
            acc = op(acc, arr)
        dst[:] = acc

    def line_read(self, core: int, line: Line, t: float) -> float:  # hot-path
        """Completion time of a cache-line fetch started at ``t``."""
        model = self.model
        if core in line.holders:
            return t + model.poll_delay
        llc_index = self._llc_index[core]
        if llc_index is not None and llc_index in line.shared_holders:
            # A same-LLC peer already pulled the line into the group cache:
            # the implicit hardware assist of SSV-D1.
            line.holders.add(core)
            return t + model.lat[Distance.CACHE_LOCAL]
        owner = line.owner_core
        start = self._line_port.get(owner, 0.0)
        if start < t:
            start = t
        dist = self.distance(core, owner)
        free = start + model.line_occupancy
        self._line_port[owner] = free
        line.next_free = free
        line.holders.add(core)
        if llc_index is not None:
            line.shared_holders.add(llc_index)
        return start + model.lat[dist]

    def arr_line_read(self, core: int, line: Line, t: float,
                      epoch: float) -> float:
        """:meth:`line_read` for the array engine, whose processes fetch
        at skewed virtual times. The hit/shared paths are identical; a
        fetch that must be served by the home core queues only behind
        port bookings that *overlap* it in simulated time (booked as
        ``(end, start)`` intervals, expired by the dispatch ``epoch``) —
        the scalar ``_line_port`` horizon would let an ahead-running
        process's future fetches delay a lagging process's past ones."""
        model = self.model
        if core in line.holders:
            return t + model.poll_delay
        llc_index = self._llc_index[core]
        if llc_index is not None and llc_index in line.shared_holders:
            line.holders.add(core)
            return t + model.lat[Distance.CACHE_LOCAL]
        owner = line.owner_core
        ivals = self._arr_port.get(owner)
        if ivals is None:
            ivals = self._arr_port[owner] = []
        while ivals and ivals[0][0] <= epoch:
            heapq.heappop(ivals)
        start = t
        if len(ivals) == 1:
            e0, s0 = ivals[0]
            if s0 <= start < e0:
                start = e0
        elif ivals:
            # Chain through the bookings in start order: concurrent
            # fetches homed at one core serialize at line_occupancy
            # spacing, exactly like the event engine's FIFO port.
            for s, e in sorted((s, e) for e, s in ivals):
                if s <= start < e:
                    start = e
        heapq.heappush(ivals, (start + model.line_occupancy, start))
        line.holders.add(core)
        if llc_index is not None:
            line.shared_holders.add(llc_index)
        return start + model.lat[self.distance(core, owner)]

    def atomic_cost(self, core: int, line: Line, now: float) -> tuple[float, float]:
        """(start, duration) of an atomic RMW: queue at the line, then pay
        the ownership ping-pong from the previous owner, inflated by the
        interference of every other in-flight contender (their line
        requests steal ownership-transfer bandwidth; per-op cost grows
        with the contender count, making the total quadratic — the Fig. 4
        collapse)."""
        model = self.model
        owner = line.owner_core
        start = max(now, line.next_free, self._line_port.get(owner, 0.0))
        dist = self.distance(core, owner)
        contenders = max(0, line.pending_rmw - 1)
        duration = (model.atomic_base
                    + model.lat[dist] * (1.0 + model.atomic_contention
                                         * contenders))
        line.next_free = start + duration
        self._line_port[owner] = start + duration
        return start, duration

    def syscall_cost(self, kind: str) -> float:
        model = self.model
        if kind == "cma":
            return model.syscall_cost + model.cma_lock_alpha * self.resources.kernel_ops
        if kind == "knem":
            return model.syscall_cost + model.knem_lock_alpha * self.resources.kernel_ops
        if kind == "xpmem_attach":
            return model.syscall_cost
        if kind == "xpmem_detach":
            return model.xpmem_detach_cost
        if kind == "generic":
            return model.syscall_cost
        raise SimulationError(f"unknown syscall kind {kind!r}")

    def page_fault_cost(self, npages: int) -> float:
        return npages * self.model.page_fault_cost

    # -- misc ---------------------------------------------------------------

    @staticmethod
    def pages_of(nbytes: int) -> int:
        return (nbytes + PAGE_SIZE - 1) // PAGE_SIZE
