"""The simulated multicore node.

A :class:`Node` binds a topology, its machine model, the cache system, the
contention resources and one event engine, and implements the pricing
protocol the engine delegates to. It is the root object every simulation
starts from::

    node = Node(get_system("epyc-2p"))
    space = node.new_address_space(rank=0, core=0)
    ...
    node.engine.spawn(rank_program, core=0)
    node.engine.run()
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from .errors import SimulationError
from .memory.address_space import AddressSpace, BufView
from .memory.cache import CacheKind, CacheLevel, CacheSystem
from .memory.model import MachineModel, PAGE_SIZE, model_for
from .options import UNSET, RunOptions, resolve_options
from .sim import primitives as P
from .sim.engine import Engine
from .sim.resources import Resource, ResourcePool
from .sim.syncobj import Line
from .topology.distance import Distance, classify_distance
from .topology.objects import ObjKind, Topology


class Node:
    """Simulated machine + pricing rules.

    Run behavior is configured through one ``options=RunOptions(...)``
    argument; the historical per-concern keywords (``data_movement=``,
    ``record_copies=``, ``observe=``, ``check=``) still work but emit a
    single ``DeprecationWarning`` per call (docs/api.md).
    """

    def __init__(
        self,
        topo: Topology,
        model: MachineModel | None = None,
        options: RunOptions | None = None,
        *,
        data_movement=UNSET,
        record_copies=UNSET,
        observe=UNSET,
        check=UNSET,
    ) -> None:
        options = resolve_options(
            options, caller="Node", data_movement=data_movement,
            record_copies=record_copies, observe=observe, check=check)
        self.topo = topo
        self.model = model if model is not None else model_for(topo)
        self.caches = CacheSystem(topo, self.model)
        self.resources = ResourcePool(topo, self.model)
        self.options = options
        self.data_movement = options.data_movement
        self.engine = Engine(self, record_copies=options.record_copies,
                             observe=options.observe, check=options.check)
        self._dist_cache: dict[tuple[int, int], Distance] = {}
        # Core index -> NUMA/socket indices, precomputed for pricing.
        self._numa_of = [
            t.index if t is not None else 0
            for t in (topo.numa_of_core(c.index) for c in topo.cores)
        ]
        self._sock_of = [
            t.index if t is not None else 0
            for t in (topo.socket_of_core(c.index) for c in topo.cores)
        ]
        self._numa_sock = {
            numa.index: (numa.ancestor(ObjKind.SOCKET).index
                         if numa.ancestor(ObjKind.SOCKET) else 0)
            for numa in topo.objects(ObjKind.NUMA)
        }
        self._numa_first_core = {
            numa.index: numa.cores()[0].index
            for numa in topo.objects(ObjKind.NUMA)
        }
        # Node-global XPMEM exposure registry (created lazily to keep the
        # import graph acyclic).
        from .shmem.xpmem import XpmemService
        self.xpmem = XpmemService(self)
        # Line-transaction horizon per home core: every cache-line fetch
        # or atomic that must be served out of one core's caches queues at
        # that core's port, whether or not the requests target the same
        # line. This is what makes wide flag fan-ins serialize (Fig. 10's
        # "separated" layout, the ARM-N1 flat-tree collapse).
        self._line_port: dict[int, float] = {}

    @property
    def obs(self):
        """The engine's observer (:data:`repro.obs.NULL_OBSERVER` unless
        constructed with ``observe=...``)."""
        return self.engine.obs

    @property
    def check_report(self):
        """Sanitizer findings so far (:class:`repro.check.CheckReport`;
        empty unless constructed with ``check='race'`` or ``'full'``)."""
        from .check.report import CheckReport
        checker = self.engine.checker
        return checker.report() if checker is not None else CheckReport()

    # -- setup helpers -----------------------------------------------------

    def new_address_space(self, rank: int, core: int) -> AddressSpace:
        numa = self.topo.numa_of_core(core)
        return AddressSpace(
            rank, core, numa.index if numa else 0,
            data_movement=self.data_movement,
        )

    def distance(self, core_a: int, core_b: int) -> Distance:
        key = (core_a, core_b)
        dist = self._dist_cache.get(key)
        if dist is None:
            dist = classify_distance(self.topo, core_a, core_b)
            self._dist_cache[key] = dist
            self._dist_cache[(core_b, core_a)] = dist
        return dist

    def numa_distance(self, core: int, numa_index: int) -> Distance:
        """Distance of a core to a NUMA node's memory."""
        if self._numa_of[core] == numa_index:
            return Distance.INTRA_NUMA
        if self._sock_of[core] == self._numa_sock[numa_index]:
            return Distance.CROSS_NUMA
        return Distance.CROSS_SOCKET

    # -- source location ---------------------------------------------------

    def _cache_source(
        self, core: int, view: BufView
    ) -> tuple[Optional[CacheLevel], int]:
        """Best cache source for reading ``view`` by ``core``.

        Returns (cache_level, hit_bytes); (None, 0) when no cache holds any
        of the range (DRAM at the buffer's home is then the source). The
        nearest cache wins; a farther one only wins by covering strictly
        more of the range.
        """
        buf = view.buf
        off, length = view.offset, view.length
        private = self.caches.private[core]
        best: Optional[CacheLevel] = None
        best_dist: Optional[Distance] = None
        best_hit = 0
        hit = private.hit_bytes(buf, off, length)
        if hit > 0:
            best, best_dist, best_hit = private, Distance.SELF, hit
        for level in self.caches.holders_of(buf):
            if level is private:
                continue
            hit = level.hit_bytes(buf, off, length)
            if hit <= 0:
                continue
            if core in level.home_cores:
                dist = (Distance.SELF if level.kind is CacheKind.PRIVATE
                        else Distance.CACHE_LOCAL)
            else:
                dist = self.distance(core, level.home_cores[0])
            better = (
                best is None
                or hit > best_hit
                or (hit == best_hit and dist < best_dist)
            )
            # Prefer the nearest source unless a farther one covers more.
            if best is not None and dist > best_dist and hit <= best_hit:
                better = False
            if better:
                best, best_dist, best_hit = level, dist, hit
                if best_hit >= length and best_dist <= Distance.CACHE_LOCAL:
                    # A full-coverage local source cannot be beaten.
                    break
        return best, best_hit

    def _source_route(
        self, core: int, level: Optional[CacheLevel], buf
    ) -> tuple[Distance, list[Resource]]:
        """Distance class + bottleneck resources for reading from a source."""
        if level is None:
            # DRAM at the buffer's home NUMA node.
            numa = buf.home_numa
            dist = self.numa_distance(core, numa)
            route = [self.resources.dram[numa]]
            src_sock = self._numa_sock[numa]
        else:
            if level is self.caches.private[core]:
                return Distance.SELF, []
            src_core = level.home_cores[0]
            if core in level.home_cores:
                dist = Distance.CACHE_LOCAL
            else:
                dist = self.distance(core, src_core)
            route = []
            llc = self.topo.llc_of_core(src_core)
            if llc is not None and llc.index in self.resources.llc_port:
                route.append(self.resources.llc_port[llc.index])
            elif self.resources.slc:
                route.append(self.resources.slc[self._sock_of[src_core]])
            else:
                route.append(self.resources.dram[self._numa_of[src_core]])
            if dist >= Distance.INTRA_NUMA:
                # Cache-to-cache transfers that leave the LLC group ride
                # the socket's data fabric (cross-CCX transport on Zen is
                # fabric-limited, but does not consume DRAM channels).
                fab = self.resources.fabric[self._sock_of[src_core]]
                if fab not in route:
                    route.append(fab)
            src_sock = self._sock_of[src_core]
        if dist >= Distance.CROSS_NUMA:
            route.append(self.resources.fabric[src_sock])
        if dist is Distance.CROSS_SOCKET:
            route.append(self.resources.xlink)
        return dist, route

    def _read_price(
        self, core: int, view: BufView, bw_factor: float = 1.0
    ) -> tuple[float, list[Resource]]:
        """Latency + transfer time to read ``view`` by ``core`` now."""
        buf = view.buf
        nbytes = view.length
        level, hit_bytes = self._cache_source(core, view)
        dist, route = self._source_route(core, level, buf)
        duration = self.model.lat[dist] + self.model.copy_issue_cost
        resources = list(route)
        bw_cap = self.model.bw[dist] * bw_factor
        eff_bw = min(
            [bw_cap] + [r.bw / (r.active + 1) for r in route]
        )
        miss_bytes = nbytes - hit_bytes
        duration += hit_bytes / eff_bw
        if miss_bytes > 0 and level is not None:
            # Remainder comes from the buffer's DRAM home.
            d2, route2 = self._source_route(core, None, buf)
            bw2 = min(
                [self.model.bw[d2] * bw_factor]
                + [r.bw / (r.active + 1) for r in route2]
            )
            duration += self.model.lat[d2] * 0.1 + miss_bytes / bw2
            resources.extend(r for r in route2 if r not in resources)
        elif miss_bytes > 0:
            duration += miss_bytes / eff_bw
        return duration, resources

    def _write_resources(self, core: int, view: BufView) -> list[Resource]:
        """Big destinations spill past the caches to their home DRAM."""
        buf = view.buf
        shared = self.caches.shared_cache_of(core)
        limit = shared.capacity if shared is not None else self.model.l2_size
        if buf.size > limit:
            return [self.resources.dram[buf.home_numa]]
        return []

    # -- engine pricing protocol ------------------------------------------

    @property
    def store_cost(self) -> float:
        return self.model.store_cost

    def plan_copy(
        self, core: int, prim: P.Copy, now: float
    ) -> tuple[float, list[Resource], Optional[Callable[[], None]]]:
        nbytes = prim.nbytes
        if nbytes <= 0:
            return 0.0, [], None
        duration, resources = self._read_price(core, prim.src, prim.bw_factor)
        for res in self._write_resources(core, prim.dst):
            if res not in resources:
                resources.append(res)

        src, dst = prim.src, prim.dst

        def complete() -> None:
            self.caches.record_read(core, src.buf, src.offset + nbytes)
            self.caches.record_write(core, dst.buf, dst.offset + nbytes)
            if self.data_movement and src.buf.data is not None \
                    and dst.buf.data is not None:
                dst.array()[:nbytes] = src.array()[:nbytes]

        return duration, resources, complete

    def plan_reduce(
        self, core: int, prim: P.Reduce, now: float
    ) -> tuple[float, list[Resource], Optional[Callable[[], None]]]:
        nbytes = prim.nbytes
        if nbytes <= 0 or not prim.srcs:
            return 0.0, [], None
        duration = 0.0
        resources: list[Resource] = []
        for src in prim.srcs:
            d, rts = self._read_price(core, src)
            duration += d
            for r in rts:
                if r not in resources:
                    resources.append(r)
        # ALU + store cost; the operand loads (priced above) overlap with
        # the arithmetic on real hardware, so this term is charged once,
        # not per source.
        duration += nbytes / self.model.reduce_bw
        for res in self._write_resources(core, prim.dst):
            if res not in resources:
                resources.append(res)

        def complete() -> None:
            for src in prim.srcs:
                self.caches.record_read(core, src.buf,
                                        src.offset + src.length)
            self.caches.record_write(core, prim.dst.buf,
                                     prim.dst.offset + nbytes)
            if self.data_movement and prim.dst.buf.data is not None:
                self._apply_reduce(prim)

        return duration, resources, complete

    @staticmethod
    def _apply_reduce(prim: P.Reduce) -> None:
        dtype = prim.dtype if prim.dtype is not None else np.float32
        op = prim.op if prim.op is not None else np.add
        dst = prim.dst.as_dtype(dtype)
        arrays = [s.as_dtype(dtype) for s in prim.srcs]
        if any(a is None for a in arrays) or dst is None:
            return
        if prim.accumulate:
            acc = dst.copy()
        else:
            acc = arrays[0].copy()
            arrays = arrays[1:]
        for arr in arrays:
            acc = op(acc, arr)
        dst[:] = acc

    def line_read(self, core: int, line: Line, t: float) -> float:
        """Completion time of a cache-line fetch started at ``t``."""
        model = self.model
        if core in line.holders:
            return t + model.poll_delay
        llc = self.topo.llc_of_core(core)
        if llc is not None and llc.index in line.shared_holders:
            # A same-LLC peer already pulled the line into the group cache:
            # the implicit hardware assist of SSV-D1.
            line.holders.add(core)
            return t + model.lat[Distance.CACHE_LOCAL]
        owner = line.owner_core
        start = max(t, self._line_port.get(owner, 0.0))
        dist = self.distance(core, owner)
        self._line_port[owner] = start + model.line_occupancy
        line.next_free = self._line_port[owner]
        line.holders.add(core)
        if llc is not None:
            line.shared_holders.add(llc.index)
        return start + model.lat[dist]

    def atomic_cost(self, core: int, line: Line, now: float) -> tuple[float, float]:
        """(start, duration) of an atomic RMW: queue at the line, then pay
        the ownership ping-pong from the previous owner, inflated by the
        interference of every other in-flight contender (their line
        requests steal ownership-transfer bandwidth; per-op cost grows
        with the contender count, making the total quadratic — the Fig. 4
        collapse)."""
        model = self.model
        owner = line.owner_core
        start = max(now, line.next_free, self._line_port.get(owner, 0.0))
        dist = self.distance(core, owner)
        contenders = max(0, line.pending_rmw - 1)
        duration = (model.atomic_base
                    + model.lat[dist] * (1.0 + model.atomic_contention
                                         * contenders))
        line.next_free = start + duration
        self._line_port[owner] = start + duration
        return start, duration

    def syscall_cost(self, kind: str) -> float:
        model = self.model
        if kind == "cma":
            return model.syscall_cost + model.cma_lock_alpha * self.resources.kernel_ops
        if kind == "knem":
            return model.syscall_cost + model.knem_lock_alpha * self.resources.kernel_ops
        if kind == "xpmem_attach":
            return model.syscall_cost
        if kind == "xpmem_detach":
            return model.xpmem_detach_cost
        if kind == "generic":
            return model.syscall_cost
        raise SimulationError(f"unknown syscall kind {kind!r}")

    def page_fault_cost(self, npages: int) -> float:
        return npages * self.model.page_fault_cost

    # -- misc ---------------------------------------------------------------

    @staticmethod
    def pages_of(nbytes: int) -> int:
        return (nbytes + PAGE_SIZE - 1) // PAGE_SIZE
