"""Optional-dependency gates.

numpy is a ``[perf]`` extra, not a hard dependency: the event engine and
every latency-only code path run without it. Anything that genuinely
needs arrays — the array-mode engine, data movement, value validation —
goes through :func:`get_numpy` / :func:`require_numpy` so a missing
install fails with one clear :class:`~repro.errors.ConfigError` instead
of an ImportError from deep inside a simulation.
"""

from __future__ import annotations

from .errors import ConfigError

_NUMPY = None
_NUMPY_CHECKED = False


def get_numpy():
    """The numpy module, or ``None`` when it is not installed."""
    global _NUMPY, _NUMPY_CHECKED
    if not _NUMPY_CHECKED:
        try:
            import numpy
            _NUMPY = numpy
        except ImportError:
            _NUMPY = None
        _NUMPY_CHECKED = True
    return _NUMPY


def have_numpy() -> bool:
    return get_numpy() is not None


def require_numpy(feature: str):
    """numpy, or a ConfigError naming the feature that wanted it."""
    np = get_numpy()
    if np is None:
        raise ConfigError(
            f"{feature} requires numpy, which is not installed; "
            f"install the perf extra (pip install repro[perf])"
        )
    return np
