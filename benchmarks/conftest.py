"""Benchmark harness plumbing.

Each ``benchmarks/test_*.py`` regenerates one table or figure of the paper
(see DESIGN.md's experiment index). The regenerated rows are printed and
persisted under ``results/``. Set ``REPRO_BENCH_QUICK=1`` to run the
trimmed configurations.
"""

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"

QUICK = bool(int(os.environ.get("REPRO_BENCH_QUICK", "0")))


@pytest.fixture(scope="session")
def quick():
    return QUICK


@pytest.fixture
def record_figure(capsys):
    """Print a FigureResult and persist it under results/."""

    def _record(result):
        RESULTS_DIR.mkdir(exist_ok=True)
        name = result.name.replace(":", "_")
        (RESULTS_DIR / f"{name}.txt").write_text(result.text + "\n")
        with capsys.disabled():
            print()
            print(result.text)
        return result

    return _record


def regenerate(benchmark, fn, record, **kw):
    """Run a figure driver once under pytest-benchmark accounting."""
    result = benchmark.pedantic(lambda: fn(**kw), rounds=1, iterations=1)
    return record(result)
