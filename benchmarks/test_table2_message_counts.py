"""Table II — number and distance of exchanged messages (Epyc-2P)."""

from repro.bench.figures import table2_message_counts

from conftest import QUICK, regenerate


def test_table2(benchmark, record_figure):
    res = regenerate(benchmark, table2_message_counts, record_figure,
                     quick=QUICK)
    d = res.data

    # XHC-tree's pattern is invariant and matches the paper exactly:
    # 1 inter-socket, 6 inter-NUMA, 56 intra-NUMA messages at 64 ranks.
    for scenario in ("map-core", "map-numa", "root=10"):
        assert d[("xhc-tree", scenario)] == {
            "inter-socket": 1, "inter-numa": 6, "intra-numa": 56,
        }, scenario

    # tuned's pattern degrades away from the friendly layout/root.
    base = d[("tuned", "map-core")]
    numa = d[("tuned", "map-numa")]
    root10 = d[("tuned", "root=10")]
    assert numa["inter-socket"] > base["inter-socket"]
    assert numa["inter-numa"] > base["inter-numa"]
    assert numa["intra-numa"] < base["intra-numa"]
    assert root10["inter-socket"] >= base["inter-socket"]
    total = sum(base.values())
    assert sum(numa.values()) == total == 63  # one message per non-root
