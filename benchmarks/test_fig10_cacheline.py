"""Fig. 10 — flag cache-line sharing schemes (Epyc-1P)."""

import numpy as np

from repro.bench.figures import fig10_cacheline

from conftest import QUICK, regenerate


def test_fig10(benchmark, record_figure):
    res = regenerate(benchmark, fig10_cacheline, record_figure, quick=QUICK)
    d = res.data

    def mean(label):
        series = d[label]
        return float(np.mean([series.latency[s] for s in series.latency]))

    # Flags sharing a line: the flat fan-out rides the LLC assist.
    # Separated lines: every member's fetch queues at the leader.
    assert mean("flat/separate") > mean("flat/shared") * 1.1
    # The hierarchical tree's explicit flag routing leaves little room for
    # the implicit assist: both layouts perform alike.
    assert abs(mean("tree/separate") - mean("tree/shared")) \
        / mean("tree/shared") < 0.2
