"""Ablation — pipeline chunk size (SSIII-B).

Pipelining is XHC's answer to hierarchy-induced serialization: chunks too
large forfeit the overlap between levels, chunks too small drown in
per-chunk flag traffic. The sweet spot sits in the tens of KiB for MB-scale
messages.
"""

from repro.bench.figures import FigureResult
from repro.bench.osu import run_collective
from repro.bench.report import render_rows
from repro.xhc import Xhc

from conftest import QUICK, regenerate

CHUNKS = (2048, 16384, 65536, 1 << 20)
SIZE = 1 << 20


def _run(quick=False):
    rows = []
    data = {}
    iters = 3 if quick else 5
    for chunk in CHUNKS:
        # Both sockets must participate: the pipeline's payoff is hiding
        # the cross-socket level behind the others.
        lat = run_collective(
            "bcast", "epyc-2p", 64,
            lambda c=chunk: Xhc(chunk_size=c), SIZE,
            warmup=1, iters=iters)
        rows.append([chunk, SIZE, lat * 1e6])
        data[chunk] = lat
    text = render_rows("Ablation — XHC pipeline chunk size "
                       "(1 MB Bcast, Epyc-2P)",
                       ["chunk", "msg_size", "latency_us"], rows)
    return FigureResult("ablation_chunk", text, data)


def test_ablation_chunk(benchmark, record_figure):
    res = regenerate(benchmark, _run, record_figure, quick=QUICK)
    d = res.data
    # No pipelining at all (chunk == message) loses to a mid-size chunk.
    assert d[1 << 20] > d[16384]
    # Pathologically small chunks pay per-chunk control overhead.
    assert d[2048] > d[16384]
