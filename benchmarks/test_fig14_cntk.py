"""Fig. 14 — CNTK (AlexNet-scale SGD) training step."""

from repro.bench.figures import fig14_cntk

from conftest import QUICK, regenerate


def test_fig14(benchmark, record_figure):
    res = regenerate(benchmark, fig14_cntk, record_figure, quick=QUICK)
    d = res.data
    systems = {s for s, _ in d}
    for system in systems:
        total = {c: d[(system, c)].total_time for (s, c) in d if s == system}
        coll = {c: d[(system, c)].collective_time
                for (s, c) in d if s == system}
        # Large-gradient allreduce: XHC-tree ahead of the flat single-copy
        # schemes; end-to-end within the leading group. (Our tuned ring
        # pipelines more perfectly than the real stack at huge payloads —
        # see EXPERIMENTS.md — so we require XHC within 1.5x of the best
        # rather than strictly first.)
        assert coll["xhc-tree"] < coll["xbrc"], system
        assert coll["xhc-tree"] < coll["xhc-flat"], system
        assert total["xhc-tree"] <= min(total.values()) * 1.5, system
