"""Fig. 9 — broadcast under rank layouts and non-zero roots (Epyc-2P)."""

from repro.bench.figures import fig9_layout_root

from conftest import QUICK, regenerate


def test_fig9(benchmark, record_figure):
    res = regenerate(benchmark, fig9_layout_root, record_figure, quick=QUICK)
    d = res.data

    def max_swing(series_a, series_b, min_size=16384):
        """Worst-case latency ratio across the medium/large sizes — the
        paper's "up to Nx" statistic."""
        return max(
            d[series_a].latency[s] / d[series_b].latency[s]
            for s in d[series_b].latency if s >= min_size
        )

    tuned_swing = max_swing("tuned/map-numa", "tuned/map-core")
    xhc_swing = max_swing("xhc-tree/map-numa", "xhc-tree/map-core")
    # tuned's static schedule suffers under the scattered layout (paper:
    # up to 3.4x); XHC adapts its hierarchy to the placement and stays
    # within a small factor. (Quick mode's 32 ranks soften the contrast.)
    assert tuned_swing > (1.25 if QUICK else 1.5)
    assert xhc_swing < tuned_swing
    assert xhc_swing < 1.4

    tuned_root_swing = max_swing("tuned/root10", "tuned/map-core")
    xhc_root_swing = max_swing("xhc-tree/root10", "xhc-tree/map-core")
    assert xhc_root_swing < 1.15
    assert xhc_root_swing <= tuned_root_swing * 1.05
