"""Ablation — the CICO small-message path (SSIII-D).

Below the threshold the copy-in-copy-out path avoids XPMEM's registration
cache lookup and attachment machinery; above it, the extra copy loses to
single-copy. Disabling the path (threshold=0) must hurt small messages and
change nothing for large ones.
"""

from repro.bench.figures import FigureResult
from repro.bench.osu import run_collective
from repro.bench.report import render_rows
from repro.xhc import Xhc

from conftest import QUICK, regenerate

SIZES = (4, 256, 1024, 65536, 1 << 20)


def _run(quick=False):
    rows = []
    data = {}
    iters = 3 if quick else 6
    for threshold, label in ((0, "disabled"), (1024, "default-1K"),
                             (16384, "oversized-16K")):
        for size in SIZES:
            lat = run_collective(
                "bcast", "epyc-1p", 32,
                lambda t=threshold: Xhc(cico_threshold=t), size,
                warmup=1, iters=iters)
            rows.append([label, size, lat * 1e6])
            data[(label, size)] = lat
    text = render_rows("Ablation — XHC CICO threshold (Bcast, Epyc-1P)",
                       ["threshold", "msg_size", "latency_us"], rows)
    return FigureResult("ablation_cico", text, data)


def test_ablation_cico(benchmark, record_figure):
    res = regenerate(benchmark, _run, record_figure, quick=QUICK)
    d = res.data
    # Small messages suffer without the CICO path (regcache lookups and
    # mapping overheads on a 4-byte payload).
    assert d[("disabled", 4)] > d[("default-1K", 4)]
    # Large messages are unaffected by the threshold choice.
    big = 1 << 20
    assert abs(d[("disabled", big)] - d[("default-1K", big)]) \
        / d[("default-1K", big)] < 0.05
    # An oversized threshold drags medium messages through double copies
    # — it must not beat the default at 64K by any real margin.
    assert d[("oversized-16K", 65536)] > d[("default-1K", 65536)] * 0.9
