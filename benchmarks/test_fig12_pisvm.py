"""Fig. 12 — PiSvM end-to-end performance."""

from repro.bench.figures import fig12_pisvm

from conftest import QUICK, regenerate


def test_fig12(benchmark, record_figure):
    res = regenerate(benchmark, fig12_pisvm, record_figure, quick=QUICK)
    d = res.data
    systems = {s for s, _ in d}
    for system in systems:
        total = {c: d[(system, c)].total_time
                 for (s, c) in d if s == system}
        # XHC-tree is the best (or tied-best) end-to-end.
        assert total["xhc-tree"] <= min(total.values()) * 1.1, system
        # SMHC's CICO staging lags on the bcast-heavy workload.
        smhc = min(v for c, v in total.items() if c.startswith("smhc"))
        assert total["xhc-tree"] < smhc, system
    if "arm-n1" in systems:
        # The gap is widest on the densest machine (SSV-D3).
        arm = {c: d[("arm-n1", c)].total_time for (s, c) in d
               if s == "arm-n1"}
        assert arm["xhc-tree"] < arm["ucc"]
        assert arm["xhc-tree"] < arm["tuned"] * 1.02
