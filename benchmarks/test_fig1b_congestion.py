"""Fig. 1b — memory-copy congestion: flat tree vs NUMA-wise hierarchy."""

from repro.bench.figures import fig1b_congestion

from conftest import QUICK, regenerate


def test_fig1b(benchmark, record_figure):
    res = regenerate(benchmark, fig1b_congestion, record_figure, quick=QUICK)
    d = res.data
    hi = 32
    lo = 8
    assert d[("flat", hi)] / d[("flat", lo)] > 3
    assert d[("hierarchical", hi)] / d[("hierarchical", lo)] < 2
    assert d[("flat", hi)] > d[("hierarchical", hi)] * 2
