"""Fig. 13 — miniAMR with default and aggressive refinement configs."""

import pytest

from repro.bench.figures import fig13_miniamr

from conftest import QUICK, regenerate


@pytest.mark.parametrize("config", ["default", "refine-1k"])
def test_fig13(benchmark, record_figure, config):
    res = regenerate(benchmark, fig13_miniamr, record_figure, config=config,
                     quick=QUICK)
    d = res.data
    systems = {s for s, _ in d}
    for system in systems:
        total = {c: d[(system, c)].total_time for (s, c) in d if s == system}
        assert total["xhc-tree"] <= min(total.values()) * 1.05, system
        # XBRC struggles, especially in the allreduce-bound config.
        assert total["xbrc"] > total["xhc-tree"], system
    if config == "refine-1k":
        # The aggressive config amplifies the collective's weight.
        for system in systems:
            frac = d[(system, "xhc-tree")].mpi_fraction
            assert frac > 0.1, system
