"""Table I — evaluation systems."""

from repro.bench.figures import table1_systems

from conftest import regenerate


def test_table1(benchmark, record_figure):
    res = regenerate(benchmark, table1_systems, record_figure)
    rows = res.data["rows"]
    assert [r[0] for r in rows] == ["Epyc-1P", "Epyc-2P", "ARM-N1"]
    assert [r[3] for r in rows] == [32, 64, 160]
    assert [r[4] for r in rows] == [4, 8, 8]
    assert [r[5] for r in rows] == [1, 2, 2]
