"""Extension — Gather/Scatter/Allgather, single-copy vs p2p trees.

The paper's conclusions sketch extending XHC to further primitives
(SSVII); the follow-up literature ([47]) builds shared-address-space
versions of exactly these. This target compares our XHC extensions against
the `tuned` baselines.
"""

from repro.bench.figures import FigureResult
from repro.bench.report import render_rows
from repro.mpi import World
from repro.node import Node
from repro.topology import get_system
from repro.bench.components import COMPONENTS

from conftest import QUICK, regenerate


def _latency(kind: str, comp: str, nranks: int, block: int,
             iters: int) -> float:
    node = Node(get_system("epyc-1p"), data_movement=False)
    world = World(node, nranks)
    comm = world.communicator(COMPONENTS[comp]())
    import numpy as np
    samples = []

    def program(comm_, ctx):
        me = comm_.rank_of(ctx)
        s = ctx.alloc("s", block)
        big = ctx.alloc("big", block * nranks)
        for it in range(iters + 1):
            t0 = ctx.now
            if kind == "gather":
                yield from comm_.gather(
                    ctx, s.whole(), big.whole() if me == 0 else None, 0)
            elif kind == "scatter":
                yield from comm_.scatter(
                    ctx, big.whole() if me == 0 else None, s.whole(), 0)
            else:
                yield from comm_.allgather(ctx, s.whole(), big.whole())
            if it > 0:
                samples.append(ctx.now - t0)

    comm.run(program)
    return float(np.mean(samples))


def _run(quick=False):
    nranks = 16 if quick else 32
    iters = 2 if quick else 4
    rows = []
    data = {}
    for kind in ("gather", "scatter", "allgather"):
        for block in (256, 65536):
            for comp in ("tuned", "xhc-tree"):
                lat = _latency(kind, comp, nranks, block, iters)
                rows.append([kind, block, comp, lat * 1e6])
                data[(kind, block, comp)] = lat
    text = render_rows(
        "Extension — Gather/Scatter/Allgather: single-copy vs p2p "
        "(Epyc-1P)",
        ["collective", "block", "component", "latency_us"], rows)
    return FigureResult("ext_collectives", text, data)


def test_ext_collectives(benchmark, record_figure):
    res = regenerate(benchmark, _run, record_figure, quick=QUICK)
    d = res.data
    # Large blocks: direct single-copy reads beat store-and-forward trees
    # for the rooted collectives (one producer or one consumer)...
    for kind in ("gather", "scatter"):
        assert d[(kind, 65536, "xhc-tree")] < d[(kind, 65536, "tuned")], kind
    # ...but NOT for allgather at full scale: the direct scheme's N^2
    # fan-in loses to the bandwidth-optimal ring at large blocks — an
    # honest negative result that motivates hierarchical staging for
    # allgather (cf. Ma et al. [23], who make exactly that case).
    assert d[("allgather", 256, "xhc-tree")] < d[("allgather", 256, "tuned")]
