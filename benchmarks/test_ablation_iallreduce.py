"""Ablation — Iallreduce vs Allreduce in the CNTK loop (SSV-D3).

The paper replaces CNTK's non-blocking Iallreduce with the blocking
Allreduce after determining the swap does not sacrifice performance (CNTK
waits on the request immediately, so there is nothing to overlap). This
target verifies that claim holds in the reproduction — and that when
compute *is* overlapped, the non-blocking form does win, i.e. the
machinery itself is sound.
"""

import numpy as np

from repro.bench.figures import FigureResult
from repro.bench.report import render_rows
from repro.mpi import FLOAT, SUM, World
from repro.node import Node
from repro.sim import primitives as P
from repro.topology import get_system
from repro.xhc import Xhc

from conftest import QUICK, regenerate

GRAD = 2 << 20
STEPS = 4
COMPUTE = 2e-3


def _epoch(mode: str, nranks: int) -> float:
    """mode: 'blocking' | 'iallreduce-wait' (CNTK's actual pattern) |
    'iallreduce-overlap' (what the primitive could do)."""
    node = Node(get_system("epyc-2p"), data_movement=False)
    world = World(node, nranks)
    comm = world.communicator(Xhc())

    def program(comm_, ctx):
        s = ctx.alloc("s", GRAD)
        r = ctx.alloc("r", GRAD)
        scratch = ctx.alloc("scr", GRAD)
        yield from comm_.allreduce(ctx, s.whole(), r.whole(), SUM, FLOAT)
        for _ in range(STEPS):
            yield P.Copy(src=scratch.whole(), dst=s.whole())
            if mode == "blocking":
                yield from comm_.allreduce(ctx, s.whole(), r.whole(),
                                           SUM, FLOAT)
                yield P.Compute(COMPUTE)
            elif mode == "iallreduce-wait":
                req = comm_.iallreduce(ctx, s.whole(), r.whole(), SUM, FLOAT)
                yield from req.wait()       # CNTK waits immediately
                yield P.Compute(COMPUTE)
            else:  # iallreduce-overlap
                req = comm_.iallreduce(ctx, s.whole(), r.whole(), SUM, FLOAT)
                yield P.Compute(COMPUTE)    # overlapped forward pass
                yield from req.wait()

    procs = comm.run(program)
    return max(p.finish_time for p in procs)


def _run(quick=False):
    nranks = 32 if quick else 64
    rows = []
    data = {}
    for mode in ("blocking", "iallreduce-wait", "iallreduce-overlap"):
        t = _epoch(mode, nranks)
        rows.append([mode, t * 1e3])
        data[mode] = t
    text = render_rows("Ablation — CNTK's Iallreduce replacement "
                       "(Epyc-2P)", ["mode", "epoch_ms"], rows)
    return FigureResult("ablation_iallreduce", text, data)


def test_ablation_iallreduce(benchmark, record_figure):
    res = regenerate(benchmark, _run, record_figure, quick=QUICK)
    d = res.data
    # The paper's claim: wait-immediately Iallreduce == blocking Allreduce.
    assert abs(d["iallreduce-wait"] - d["blocking"]) / d["blocking"] < 0.1
    # And genuine overlap does help, so the equivalence above is a
    # property of CNTK's call pattern, not of a broken primitive.
    assert d["iallreduce-overlap"] < d["blocking"] * 0.95
