"""Extension — the Reduce and Barrier primitives (SSVII's ongoing work).

The paper's conclusions name Reduce and Barrier as the primitives under
development; both are implemented here. This target records how they stack
up against the baselines.
"""

from repro.bench.figures import FigureResult
from repro.bench.osu import run_collective
from repro.bench.report import render_rows
from repro.bench.components import COMPONENTS

from conftest import QUICK, regenerate


def _run(quick=False):
    nranks = 32 if quick else 64
    iters = 3 if quick else 5
    rows = []
    data = {}
    for comp in ("tuned", "ucc", "xbrc", "xhc-tree"):
        for size in (64, 65536):
            lat = run_collective("reduce", "epyc-2p", nranks,
                                 COMPONENTS[comp], size,
                                 warmup=1, iters=iters)
            rows.append(["reduce", size, comp, lat * 1e6])
            data[("reduce", size, comp)] = lat
    for comp in ("tuned", "sm", "ucc", "xhc-tree"):
        lat = run_collective("barrier", "epyc-2p", nranks,
                             COMPONENTS[comp], 4, warmup=1, iters=iters)
        rows.append(["barrier", "-", comp, lat * 1e6])
        data[("barrier", comp)] = lat
    text = render_rows("Extension — Reduce and Barrier (Epyc-2P)",
                       ["collective", "size", "component", "latency_us"],
                       rows)
    return FigureResult("ext_reduce_barrier", text, data)


def test_ext_reduce_barrier(benchmark, record_figure):
    res = regenerate(benchmark, _run, record_figure, quick=QUICK)
    d = res.data
    # Large reduce: hierarchical single-copy ahead of p2p trees and the
    # flat XBRC.
    assert d[("reduce", 65536, "xhc-tree")] < d[("reduce", 65536, "tuned")]
    assert d[("reduce", 65536, "xhc-tree")] < d[("reduce", 65536, "xbrc")]
    # Barrier: single-writer hierarchical flags beat the atomics-based sm.
    assert d[("barrier", "xhc-tree")] < d[("barrier", "sm")]
