"""Ablation — hierarchy sensitivity (SSIII-A, Fig. 2's knob).

The ``numa+socket`` sensitivity is the paper's default; this sweep shows
what each level buys on the dual-socket machine, and that adding the LLC
level is a wash-to-win for large fan-outs (one more level of locality, one
more level of serialization).
"""

from repro.bench.figures import FigureResult
from repro.bench.osu import run_collective
from repro.bench.report import render_rows
from repro.xhc import Xhc

from conftest import QUICK, regenerate

SENSITIVITIES = ("flat", "numa", "numa+socket", "l3+numa+socket")
SIZES = (4, 65536, 1 << 20)


def _run(quick=False):
    rows = []
    data = {}
    iters = 3 if quick else 6
    nranks = 32 if quick else 64
    for sens in SENSITIVITIES:
        for size in SIZES:
            lat = run_collective(
                "bcast", "epyc-2p", nranks,
                lambda s=sens: Xhc(hierarchy=s), size,
                warmup=1, iters=iters)
            rows.append([sens, size, lat * 1e6])
            data[(sens, size)] = lat
    text = render_rows("Ablation — XHC hierarchy sensitivity "
                       "(Bcast, Epyc-2P)",
                       ["sensitivity", "msg_size", "latency_us"], rows)
    return FigureResult("ablation_hierarchy", text, data)


def test_ablation_hierarchy(benchmark, record_figure):
    res = regenerate(benchmark, _run, record_figure, quick=QUICK)
    d = res.data
    big = 1 << 20
    # Topology awareness pays at large sizes: flat's single-source fan-out
    # congests (Fig. 1b's lesson).
    assert d[("numa+socket", big)] < d[("flat", big)] / 2
    # NUMA-only grouping already captures most of the benefit on this
    # machine; the socket level refines it.
    assert d[("numa", big)] < d[("flat", big)]
    # The LLC level is within a modest factor either way (no pathological
    # regression from the extra level).
    assert d[("l3+numa+socket", big)] < d[("numa+socket", big)] * 1.5
