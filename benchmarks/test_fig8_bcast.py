"""Fig. 8 — MPI Broadcast comparison on all three systems."""

import pytest

from repro.bench.figures import fig8_bcast

from conftest import QUICK, regenerate


@pytest.mark.parametrize("system", ["epyc-1p", "epyc-2p", "arm-n1"])
def test_fig8(benchmark, record_figure, system):
    res = regenerate(benchmark, fig8_bcast, record_figure, system=system,
                     quick=QUICK)
    d = res.data

    def lat(comp, size):
        return d[comp].latency[size]

    small, mid = 4, 65536
    # XHC variants beat the point-to-point and shared-memory stacks for
    # small messages.
    assert lat("xhc-tree", small) < lat("tuned", small)
    assert lat("xhc-tree", small) < lat("ucc", small)
    assert lat("xhc-tree", small) < lat("sm", small) / 5
    if system == "arm-n1":
        # No LLC groups: the flat variant collapses, the tree does not.
        # (Quick mode runs only 64 of the 160 ranks, softening the fan-in.)
        factor = 1.5 if QUICK else 3
        assert lat("xhc-flat", small) > lat("xhc-tree", small) * factor
    else:
        # LLC-assisted flag propagation keeps flat close to tree (the
        # paper even has it slightly ahead; our residual flat overhead is
        # documented in EXPERIMENTS.md) — far from ARM's collapse.
        assert lat("xhc-flat", small) < lat("xhc-tree", small) * 3

    # Medium-size single-copy + hierarchy beats every CICO scheme.
    assert lat("xhc-tree", mid) < lat("smhc-flat", mid)
    assert lat("xhc-tree", mid) < lat("sm", mid)

    big = 1 << 20
    # Large messages: far ahead of the shared-memory copy schemes (the
    # single-copy advantage), and within the tuned/ucc class.
    assert lat("xhc-tree", big) < lat("smhc-flat", big) / 2
    assert lat("xhc-tree", big) < lat("sm", big) / 3
    assert lat("xhc-tree", big) < 2.5 * min(lat("tuned", big),
                                            lat("ucc", big))
