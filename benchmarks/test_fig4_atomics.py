"""Fig. 4 — atomics vs single-writer synchronization at scale (ARM-N1)."""

from repro.bench.figures import fig4_atomics

from conftest import QUICK, regenerate


def test_fig4(benchmark, record_figure):
    res = regenerate(benchmark, fig4_atomics, record_figure, quick=QUICK)
    d = res.data
    top = 160
    ratio_top = d[("atomics", top)] / d[("single-writer", top)]
    ratio_low = d[("atomics", 10)] / d[("single-writer", 10)]
    # Paper: 23x at full occupancy; the shape requirement is a drastic,
    # monotonically growing divergence.
    assert ratio_top > 8
    assert ratio_top > 3 * ratio_low
    counts = sorted({n for (_, n) in d})
    atomics = [d[("atomics", n)] for n in counts]
    assert atomics == sorted(atomics)
