"""Fig. 1a — one-way latency across topological domains."""

from repro.bench.figures import fig1a_domains

from conftest import QUICK, regenerate


def test_fig1a(benchmark, record_figure):
    res = regenerate(benchmark, fig1a_domains, record_figure, quick=QUICK)
    d = res.data
    # Epycs: strictly increasing with distance.
    for system in ("epyc-1p", "epyc-2p"):
        assert d[(system, "cache-local")] < d[(system, "intra-numa")] \
            < d[(system, "cross-numa")]
    assert d[("epyc-2p", "cross-numa")] < d[("epyc-2p", "cross-socket")]
    # ARM-N1: intra == cross NUMA (within 5%), big cross-socket jump.
    assert abs(d[("arm-n1", "cross-numa")] / d[("arm-n1", "intra-numa")]
               - 1) < 0.05
    assert d[("arm-n1", "cross-socket")] > d[("arm-n1", "intra-numa")] * 1.5
