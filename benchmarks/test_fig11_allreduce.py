"""Fig. 11 — MPI Allreduce comparison on all three systems."""

import pytest

from repro.bench.figures import fig11_allreduce

from conftest import QUICK, regenerate


@pytest.mark.parametrize("system", ["epyc-1p", "epyc-2p", "arm-n1"])
def test_fig11(benchmark, record_figure, system):
    res = regenerate(benchmark, fig11_allreduce, record_figure,
                     system=system, quick=QUICK)
    d = res.data

    def lat(comp, size):
        return d[comp].latency[size]

    small, mid, big = 4, 65536, 1 << 20
    # XHC-tree leads the small range (tuned is competitive on Epyc-2P
    # for 4-32 B in the paper; we require top-2 within a small factor).
    best_small = min(lat(c, small) for c in d)
    assert lat("xhc-tree", small) <= best_small * 1.6
    # XHC-flat suffers from flat-group linearization at small sizes.
    assert lat("xhc-flat", small) > lat("xhc-tree", small) * 2
    # XBRC behaves like XHC-flat (flat, single-copy), SSV-D2.
    assert 0.25 < lat("xbrc", small) / lat("xhc-flat", small) < 4

    # Mid-range: XHC-tree in front (paper: better than all at the low-end
    # of the medium range).
    assert lat("xhc-tree", mid) == min(lat(c, mid) for c in d)
    assert lat("xhc-tree", mid) < lat("sm", mid) / 4

    # Large: far ahead of sm/xbrc/xhc-flat; within the tuned/ucc class.
    assert lat("xhc-tree", big) < lat("xbrc", big)
    assert lat("xhc-tree", big) < lat("xhc-flat", big)
    assert lat("xhc-tree", big) < lat("sm", big) / 4
    assert lat("xhc-tree", big) < 1.6 * min(lat("tuned", big),
                                            lat("ucc", big))
