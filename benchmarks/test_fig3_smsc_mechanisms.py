"""Fig. 3 — p2p and Broadcast latency per single-copy mechanism."""

from repro.bench.figures import FIG3_SIZES, fig3_mechanisms

from conftest import QUICK, regenerate


def test_fig3(benchmark, record_figure):
    res = regenerate(benchmark, fig3_mechanisms, record_figure, quick=QUICK)
    sizes = sorted(res.data[("p2p", "xpmem")].latency)
    big = sizes[-1]
    for test in ("p2p", "bcast"):
        xpmem = res.data[(test, "xpmem")].latency[big]
        knem = res.data[(test, "knem")].latency[big]
        cma = res.data[(test, "cma")].latency[big]
        cico = res.data[(test, "cico")].latency[big]
        nocache = res.data[(test, "xpmem-nocache")].latency[big]
        # The paper's orderings that our model reproduces at the largest
        # size: xpmem beats the other single-copy mechanisms and the CICO
        # fallback, and xpmem without its registration cache is worse
        # than the alternatives. (The CICO gap is smaller than the
        # paper's 9.5x — see EXPERIMENTS.md: our staging pipeline
        # overlaps the two copies nearly perfectly, which real FIFO-based
        # BTLs do not achieve; at individual mid sizes CICO can even tie.)
        assert xpmem < knem < cma, test
        assert xpmem < cico, test
        assert nocache > knem, test
    # The kernel-assisted ordering holds across the whole sweep.
    for size in sizes:
        assert res.data[("bcast", "knem")].latency[size] \
            < res.data[("bcast", "cma")].latency[size], size
