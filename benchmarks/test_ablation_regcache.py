"""Ablation — the registration cache (SSIII-C, Fig. 3's dashed series).

XPMEM without mapping reuse repays the attach cost (syscall + page
faults) on every operation; the paper shows this renders it worse than
every alternative mechanism.
"""

from repro.bench.figures import FigureResult
from repro.bench.osu import run_collective
from repro.bench.report import render_rows
from repro.shmem.smsc import SmscConfig
from repro.bench.components import COMPONENTS

from conftest import QUICK, regenerate

SIZES = (65536, 1 << 20)


def _run(quick=False):
    rows = []
    data = {}
    iters = 3 if quick else 6
    for label, cfg in (("regcache", SmscConfig(mechanism="xpmem")),
                       ("no-regcache",
                        SmscConfig(mechanism="xpmem", use_regcache=False))):
        for size in SIZES:
            lat = run_collective(
                "bcast", "epyc-1p", 32, COMPONENTS["xhc-tree"], size,
                warmup=1, iters=iters, smsc=cfg)
            rows.append([label, size, lat * 1e6])
            data[(label, size)] = lat
    text = render_rows(
        "Ablation — XPMEM registration cache (XHC Bcast, Epyc-1P)",
        ["config", "msg_size", "latency_us"], rows)
    return FigureResult("ablation_regcache", text, data)


def test_ablation_regcache(benchmark, record_figure):
    res = regenerate(benchmark, _run, record_figure, quick=QUICK)
    d = res.data
    for size in SIZES:
        # Attach + page faults on every op vs amortized once.
        assert d[("no-regcache", size)] > d[("regcache", size)] * 1.5, size
