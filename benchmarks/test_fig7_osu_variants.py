"""Fig. 7 — osu_bcast vs the modified osu_bcast_mb (Epyc-2P)."""

from repro.bench.figures import fig7_osu_variants

from conftest import QUICK, regenerate


def test_fig7(benchmark, record_figure):
    res = regenerate(benchmark, fig7_osu_variants, record_figure,
                     quick=QUICK)
    d = res.data
    mid = 1 << 20  # inside the cache-sensitive 2KB..1MB window

    # The stock benchmark flatters the flat tree in the medium range...
    assert d["flat/osu_bcast"].latency[mid] \
        < d["flat/osu_bcast_mb"].latency[mid] / 2
    # ...to the point of reversing the verdict: flat "beats" tree without
    # the modification, while the realistic variant shows tree ahead.
    assert d["flat/osu_bcast"].latency[mid] < d["tree/osu_bcast"].latency[mid]
    assert d["tree/osu_bcast_mb"].latency[mid] \
        < d["flat/osu_bcast_mb"].latency[mid]

    # Small messages (CICO path): the copy-in rewrites the staging buffer
    # either way, so the two benchmarks agree.
    small = 4
    ratio = (d["flat/osu_bcast_mb"].latency[small]
             / d["flat/osu_bcast"].latency[small])
    assert 0.8 < ratio < 1.3
